//! Spanning trees for root-sequenced group multicast.
//!
//! Sesame routes, sequences, and retransmits all sharing messages of a group
//! through a spanning tree rooted at the group root. [`SpanningTree`] builds
//! that tree by breadth-first search over the topology's physical links, so
//! every tree edge is exactly one hop and every root-to-member path is a
//! shortest path.

use std::collections::VecDeque;

use crate::{LinkId, NodeId, Topology};

/// A BFS spanning tree over every position of a topology, rooted at one
/// node.
///
/// ```
/// use sesame_net::{MeshTorus2d, NodeId, SpanningTree, Topology};
///
/// let topo = MeshTorus2d::new(3, 3);
/// let tree = SpanningTree::build(&topo, NodeId::new(4));
/// assert_eq!(tree.root(), NodeId::new(4));
/// assert_eq!(tree.depth(NodeId::new(4)), 0);
/// // Every position is reachable at its shortest-path depth.
/// assert_eq!(tree.depth(NodeId::new(0)), topo.hops(NodeId::new(4), NodeId::new(0)));
/// ```
#[derive(Debug, Clone)]
pub struct SpanningTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
}

impl SpanningTree {
    /// Builds the BFS tree of `topo` rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a valid position, or if the topology is
    /// disconnected (every provided topology is connected).
    pub fn build(topo: &dyn Topology, root: NodeId) -> Self {
        let positions = topo.positions();
        assert!(root.index() < positions, "root out of range");
        let mut parent = vec![None; positions];
        let mut children = vec![Vec::new(); positions];
        let mut depth = vec![u32::MAX; positions];
        depth[root.index()] = 0;
        let mut queue = VecDeque::from([root]);
        while let Some(at) = queue.pop_front() {
            for nb in topo.neighbors(at) {
                if depth[nb.index()] == u32::MAX {
                    depth[nb.index()] = depth[at.index()] + 1;
                    parent[nb.index()] = Some(at);
                    children[at.index()].push(nb);
                    queue.push_back(nb);
                }
            }
        }
        assert!(
            depth.iter().all(|&d| d != u32::MAX),
            "topology is disconnected"
        );
        SpanningTree {
            root,
            parent,
            children,
            depth,
        }
    }

    /// The tree root (the group's sequencing arbiter and lock manager).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of positions in the tree.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is empty (never true for a built tree).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The parent of `n`, or `None` for the root.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.parent[n.index()]
    }

    /// The children of `n` in BFS discovery order.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.children[n.index()]
    }

    /// Hop distance from the root to `n`.
    pub fn depth(&self, n: NodeId) -> u32 {
        self.depth[n.index()]
    }

    /// The positions along the tree path from the root to `n`, inclusive of
    /// both endpoints.
    pub fn path_from_root(&self, n: NodeId) -> Vec<NodeId> {
        let mut rev = vec![n];
        let mut at = n;
        while let Some(p) = self.parent(at) {
            rev.push(p);
            at = p;
        }
        rev.reverse();
        rev
    }

    /// The directed links the root's downstream copy of a packet traverses
    /// to reach `n`.
    pub fn links_from_root(&self, n: NodeId) -> Vec<LinkId> {
        let path = self.path_from_root(n);
        path.windows(2)
            .map(|w| LinkId::between(w[0], w[1]))
            .collect()
    }

    /// All positions in BFS order (root first); the order a downstream
    /// multicast wave visits them.
    pub fn bfs_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        let mut queue = VecDeque::from([self.root]);
        while let Some(at) = queue.pop_front() {
            order.push(at);
            queue.extend(self.children(at).iter().copied());
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FullMesh, Line, MeshTorus2d, Ring, Star};

    fn n(id: u32) -> NodeId {
        NodeId::new(id)
    }

    #[test]
    fn depths_equal_shortest_paths() {
        for topo in [
            &MeshTorus2d::new(4, 4) as &dyn Topology,
            &MeshTorus2d::with_nodes(7),
            &Ring::new(9),
            &Line::new(6),
            &Star::new(6),
            &FullMesh::new(5),
        ] {
            for r in 0..topo.len() as u32 {
                let tree = SpanningTree::build(topo, n(r));
                for m in 0..topo.len() as u32 {
                    assert_eq!(
                        tree.depth(n(m)),
                        topo.hops(n(r), n(m)),
                        "root {r}, member {m}, topo {topo:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parent_child_relations_are_consistent() {
        let topo = MeshTorus2d::new(4, 4);
        let tree = SpanningTree::build(&topo, n(5));
        for m in 0..16 {
            if m == 5 {
                assert_eq!(tree.parent(n(m)), None);
            } else {
                let p = tree.parent(n(m)).expect("non-root has parent");
                assert!(tree.children(p).contains(&n(m)));
                assert_eq!(tree.depth(n(m)), tree.depth(p) + 1);
            }
        }
    }

    #[test]
    fn path_from_root_walks_the_tree() {
        let topo = Ring::new(8);
        let tree = SpanningTree::build(&topo, n(0));
        let path = tree.path_from_root(n(3));
        assert_eq!(path.first(), Some(&n(0)));
        assert_eq!(path.last(), Some(&n(3)));
        assert_eq!(path.len() as u32, tree.depth(n(3)) + 1);
        let links = tree.links_from_root(n(3));
        assert_eq!(links.len() as u32, tree.depth(n(3)));
    }

    #[test]
    fn bfs_order_visits_every_position_once_root_first() {
        let topo = MeshTorus2d::with_nodes(10); // 4x3 rectangle, 12 positions
        let tree = SpanningTree::build(&topo, n(2));
        let order = tree.bfs_order();
        assert_eq!(order.len(), topo.positions());
        assert_eq!(order[0], n(2));
        let mut sorted: Vec<u32> = order.iter().map(|m| m.get()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
        // BFS order is non-decreasing in depth.
        for w in order.windows(2) {
            assert!(tree.depth(w[0]) <= tree.depth(w[1]));
        }
    }

    #[test]
    fn star_tree_from_leaf_goes_through_hub() {
        let topo = Star::new(5);
        let tree = SpanningTree::build(&topo, n(3));
        assert_eq!(tree.parent(n(0)), Some(n(3)));
        assert_eq!(tree.parent(n(1)), Some(n(0)));
        assert_eq!(tree.depth(n(1)), 2);
    }
}
