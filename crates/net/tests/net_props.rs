//! Randomized tests of the interconnect layer over every topology: route
//! validity, hop symmetry, spanning-tree shortest paths, fabric timing
//! monotonicity, and per-link FIFO under store-and-forward contention.
//!
//! Cases are drawn from the kernel's own deterministic [`DetRng`] so the
//! suite needs no external property-testing crate and replays identically
//! on every run.

use sesame_net::{
    ContentionModel, Fabric, FullMesh, Hypercube, Line, LinkTiming, MeshTorus2d, NodeId, Ring,
    SpanningTree, Star, Topology,
};
use sesame_sim::{DetRng, SimTime};

fn n(id: u32) -> NodeId {
    NodeId::new(id)
}

/// Instantiates topology `kind` (0..5) with `nodes` CPUs.
fn make_topology(kind: u8, nodes: usize) -> Box<dyn Topology> {
    match kind % 6 {
        0 => Box::new(MeshTorus2d::with_nodes(nodes)),
        1 => Box::new(Ring::new(nodes)),
        2 => Box::new(Line::new(nodes)),
        3 => Box::new(Star::new(nodes)),
        4 => Box::new(Hypercube::with_at_least(nodes)),
        _ => Box::new(FullMesh::new(nodes)),
    }
}

/// Routes are connected, end at the destination, and have exactly
/// `hops` links; hops are symmetric; self-distance is zero.
#[test]
fn routes_are_valid_on_every_topology() {
    let mut rng = DetRng::new(0xA11CE);
    for _ in 0..48 {
        let kind = rng.next_below(6) as u8;
        let nodes = rng.next_range(2, 29) as usize;
        let a = n(rng.next_below(nodes as u64) as u32);
        let b = n(rng.next_below(nodes as u64) as u32);
        let topo = make_topology(kind, nodes);
        let links = topo.route(a, b);
        assert_eq!(links.len() as u32, topo.hops(a, b));
        let mut at = a;
        for l in &links {
            assert_eq!(l.from_node(), at);
            // Each link connects adjacent positions.
            assert!(
                topo.neighbors(l.from_node()).contains(&l.to_node()),
                "non-adjacent link {l}"
            );
            at = l.to_node();
        }
        assert_eq!(at, b);
        assert_eq!(topo.hops(a, b), topo.hops(b, a));
        assert_eq!(topo.hops(a, a), 0);
        assert!(topo.hops(a, b) <= topo.diameter().max(1) * 2);
    }
}

/// Spanning trees reach every position at shortest-path depth with
/// consistent parent/child links, from any root.
#[test]
fn spanning_trees_are_shortest_path_trees() {
    let mut rng = DetRng::new(0xB0B);
    for _ in 0..48 {
        let kind = rng.next_below(6) as u8;
        let nodes = rng.next_range(2, 24) as usize;
        let root = n(rng.next_below(nodes as u64) as u32);
        let topo = make_topology(kind, nodes);
        let tree = SpanningTree::build(topo.as_ref(), root);
        assert_eq!(tree.len(), topo.positions());
        for m in 0..topo.len() as u32 {
            let m = n(m);
            assert_eq!(tree.depth(m), topo.hops(root, m));
            if m != root {
                let p = tree.parent(m).expect("non-root parent");
                assert_eq!(tree.depth(m), tree.depth(p) + 1);
                assert!(tree.children(p).contains(&m));
            }
        }
        let order = tree.bfs_order();
        assert_eq!(order.len(), topo.positions());
        assert_eq!(order[0], root);
    }
}

/// Cut-through delivery time is now + hops*latency + serialization;
/// arrival never precedes departure; bigger payloads never arrive
/// sooner.
#[test]
fn fabric_timing_is_monotone() {
    let mut rng = DetRng::new(0xC0FFEE);
    for _ in 0..48 {
        let kind = rng.next_below(6) as u8;
        let nodes = rng.next_range(2, 19) as usize;
        let a = n(rng.next_below(nodes as u64) as u32);
        let b = n(rng.next_below(nodes as u64) as u32);
        let bytes = rng.next_range(1, 9_999) as u32;
        let start = rng.next_below(1_000_000);
        let topo = make_topology(kind, nodes);
        let now = SimTime::from_nanos(start);
        let timing = LinkTiming::paper_1994();
        let mut f = Fabric::new(timing);
        let arr = f.unicast(now, topo.as_ref(), a, b, bytes);
        assert!(arr >= now);
        let expect = now + timing.transfer(topo.hops(a, b), bytes);
        if a != b {
            assert_eq!(arr, expect);
        }
        let mut f2 = Fabric::new(timing);
        let arr_bigger = f2.unicast(now, topo.as_ref(), a, b, bytes + 64);
        assert!(arr_bigger >= arr);
    }
}

/// Under store-and-forward contention, packets entering the same first
/// link in order leave in order (per-link FIFO), and contention never
/// makes anything *faster* than the contention-free model.
#[test]
fn store_and_forward_is_fifo_and_never_faster() {
    let mut rng = DetRng::new(0xF1F0);
    for _ in 0..48 {
        let nodes = rng.next_range(3, 11) as usize;
        let count = rng.next_range(1, 29) as usize;
        let mut sends: Vec<(u64, u32)> = (0..count)
            .map(|_| (rng.next_below(5_000), rng.next_range(1, 1_999) as u32))
            .collect();
        sends.sort_by_key(|&(t, _)| t);
        let topo = Line::new(nodes);
        let dst = n(nodes as u32 - 1);
        let timing = LinkTiming::paper_1994();
        let mut contended = Fabric::new(timing);
        contended.set_contention(ContentionModel::StoreAndForward);
        let mut arrivals = Vec::new();
        for &(t, bytes) in &sends {
            let now = SimTime::from_nanos(t);
            let arr = contended.unicast(now, &topo, n(0), dst, bytes);
            let mut free = Fabric::new(timing);
            let free_arr = free.unicast(now, &topo, n(0), dst, bytes);
            assert!(arr >= free_arr, "contention made delivery faster");
            arrivals.push(arr);
        }
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1], "per-link FIFO violated: {w:?}");
        }
    }
}

/// Multicast arrivals are ordered by tree depth and each member's
/// arrival is no earlier than a direct unicast could make it.
#[test]
fn multicast_arrivals_follow_tree_depth() {
    let mut rng = DetRng::new(0xD00D);
    for _ in 0..48 {
        let kind = rng.next_below(6) as u8;
        let nodes = rng.next_range(2, 19) as usize;
        let root = n(rng.next_below(nodes as u64) as u32);
        let bytes = rng.next_range(1, 999) as u32;
        let topo = make_topology(kind, nodes);
        let tree = SpanningTree::build(topo.as_ref(), root);
        let members: Vec<NodeId> = (0..topo.len() as u32).map(n).collect();
        let mut f = Fabric::new(LinkTiming::paper_1994());
        let arrivals = f.multicast(SimTime::ZERO, &tree, bytes, &members);
        assert_eq!(arrivals.len(), members.len());
        for (m, at) in &arrivals {
            if *m == root {
                assert_eq!(*at, SimTime::ZERO);
            } else {
                let expect = SimTime::ZERO
                    + LinkTiming::paper_1994().serialization(bytes)
                    + sesame_sim::SimDur::from_nanos(200) * tree.depth(*m) as u64;
                assert_eq!(*at, expect, "member {m}");
            }
        }
    }
}
