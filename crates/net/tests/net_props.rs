//! Property tests of the interconnect layer over every topology: route
//! validity, hop symmetry, spanning-tree shortest paths, fabric timing
//! monotonicity, and per-link FIFO under store-and-forward contention.

use proptest::prelude::*;
use sesame_net::{
    ContentionModel, Fabric, FullMesh, Hypercube, Line, LinkTiming, MeshTorus2d, NodeId, Ring,
    SpanningTree, Star, Topology,
};
use sesame_sim::SimTime;

fn n(id: u32) -> NodeId {
    NodeId::new(id)
}

/// Instantiates topology `kind` (0..5) with `nodes` CPUs.
fn make_topology(kind: u8, nodes: usize) -> Box<dyn Topology> {
    match kind % 6 {
        0 => Box::new(MeshTorus2d::with_nodes(nodes)),
        1 => Box::new(Ring::new(nodes)),
        2 => Box::new(Line::new(nodes)),
        3 => Box::new(Star::new(nodes)),
        4 => Box::new(Hypercube::with_at_least(nodes)),
        _ => Box::new(FullMesh::new(nodes)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routes are connected, end at the destination, and have exactly
    /// `hops` links; hops are symmetric; self-distance is zero.
    #[test]
    fn routes_are_valid_on_every_topology(
        kind in 0u8..6,
        nodes in 2usize..30,
        a in 0u32..30,
        b in 0u32..30,
    ) {
        let topo = make_topology(kind, nodes);
        let a = n(a % nodes as u32);
        let b = n(b % nodes as u32);
        let links = topo.route(a, b);
        prop_assert_eq!(links.len() as u32, topo.hops(a, b));
        let mut at = a;
        for l in &links {
            prop_assert_eq!(l.from_node(), at);
            // Each link connects adjacent positions.
            prop_assert!(topo.neighbors(l.from_node()).contains(&l.to_node()),
                "non-adjacent link {}", l);
            at = l.to_node();
        }
        prop_assert_eq!(at, b);
        prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
        prop_assert_eq!(topo.hops(a, a), 0);
        prop_assert!(topo.hops(a, b) <= topo.diameter().max(1) * 2);
    }

    /// Spanning trees reach every position at shortest-path depth with
    /// consistent parent/child links, from any root.
    #[test]
    fn spanning_trees_are_shortest_path_trees(
        kind in 0u8..6,
        nodes in 2usize..25,
        root in 0u32..25,
    ) {
        let topo = make_topology(kind, nodes);
        let root = n(root % nodes as u32);
        let tree = SpanningTree::build(topo.as_ref(), root);
        prop_assert_eq!(tree.len(), topo.positions());
        for m in 0..topo.len() as u32 {
            let m = n(m);
            prop_assert_eq!(tree.depth(m), topo.hops(root, m));
            if m != root {
                let p = tree.parent(m).expect("non-root parent");
                prop_assert_eq!(tree.depth(m), tree.depth(p) + 1);
                prop_assert!(tree.children(p).contains(&m));
            }
        }
        let order = tree.bfs_order();
        prop_assert_eq!(order.len(), topo.positions());
        prop_assert_eq!(order[0], root);
    }

    /// Cut-through delivery time is now + hops*latency + serialization;
    /// arrival never precedes departure; bigger payloads never arrive
    /// sooner.
    #[test]
    fn fabric_timing_is_monotone(
        kind in 0u8..6,
        nodes in 2usize..20,
        a in 0u32..20,
        b in 0u32..20,
        bytes in 1u32..10_000,
        start in 0u64..1_000_000,
    ) {
        let topo = make_topology(kind, nodes);
        let a = n(a % nodes as u32);
        let b = n(b % nodes as u32);
        let now = SimTime::from_nanos(start);
        let timing = LinkTiming::paper_1994();
        let mut f = Fabric::new(timing);
        let arr = f.unicast(now, topo.as_ref(), a, b, bytes);
        prop_assert!(arr >= now);
        let expect = now + timing.transfer(topo.hops(a, b), bytes);
        if a != b {
            prop_assert_eq!(arr, expect);
        }
        let mut f2 = Fabric::new(timing);
        let arr_bigger = f2.unicast(now, topo.as_ref(), a, b, bytes + 64);
        prop_assert!(arr_bigger >= arr);
    }

    /// Under store-and-forward contention, packets entering the same first
    /// link in order leave in order (per-link FIFO), and contention never
    /// makes anything *faster* than the contention-free model.
    #[test]
    fn store_and_forward_is_fifo_and_never_faster(
        sends in proptest::collection::vec((0u64..5_000, 1u32..2_000), 1..30),
        nodes in 3usize..12,
    ) {
        let topo = Line::new(nodes);
        let dst = n(nodes as u32 - 1);
        let mut sends = sends;
        sends.sort_by_key(|&(t, _)| t);
        let timing = LinkTiming::paper_1994();
        let mut contended = Fabric::new(timing);
        contended.set_contention(ContentionModel::StoreAndForward);
        let mut arrivals = Vec::new();
        for &(t, bytes) in &sends {
            let now = SimTime::from_nanos(t);
            let arr = contended.unicast(now, &topo, n(0), dst, bytes);
            let mut free = Fabric::new(timing);
            let free_arr = free.unicast(now, &topo, n(0), dst, bytes);
            prop_assert!(arr >= free_arr, "contention made delivery faster");
            arrivals.push(arr);
        }
        for w in arrivals.windows(2) {
            prop_assert!(w[0] <= w[1], "per-link FIFO violated: {:?}", w);
        }
    }

    /// Multicast arrivals are ordered by tree depth and each member's
    /// arrival is no earlier than a direct unicast could make it.
    #[test]
    fn multicast_arrivals_follow_tree_depth(
        kind in 0u8..6,
        nodes in 2usize..20,
        root in 0u32..20,
        bytes in 1u32..1_000,
    ) {
        let topo = make_topology(kind, nodes);
        let root = n(root % nodes as u32);
        let tree = SpanningTree::build(topo.as_ref(), root);
        let members: Vec<NodeId> = (0..topo.len() as u32).map(n).collect();
        let mut f = Fabric::new(LinkTiming::paper_1994());
        let arrivals = f.multicast(SimTime::ZERO, &tree, bytes, &members);
        prop_assert_eq!(arrivals.len(), members.len());
        for (m, at) in &arrivals {
            if *m == root {
                prop_assert_eq!(*at, SimTime::ZERO);
            } else {
                let expect = SimTime::ZERO
                    + LinkTiming::paper_1994().serialization(bytes)
                    + sesame_sim::SimDur::from_nanos(200) * tree.depth(*m) as u64;
                prop_assert_eq!(*at, expect, "member {}", m);
            }
        }
    }
}
