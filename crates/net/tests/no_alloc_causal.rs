//! Proof that causal-id tracking is free when tracing is detached:
//! allocating ids, stamping them onto packets, and comparing them performs
//! no heap allocation. Companion to the sim crate's counting-allocator
//! test for the trace recorder itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sesame_net::{CauseAlloc, CauseId};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn allocating_causal_ids_never_touches_the_heap() {
    let mut alloc = CauseAlloc::new();
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut last = CauseId::NONE;
    for _ in 0..100_000 {
        let id = alloc.fresh();
        assert!(id.is_some() && id > last);
        last = id;
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "causal-id allocation must be a bare counter increment"
    );
    assert_eq!(alloc.allocated(), 100_000);
}
