//! # sesame-telemetry — metrics, spans, and timeline export
//!
//! The observability layer of the `sesame-rs` reproduction. It turns the
//! canonical structured protocol trace stream (typed
//! `sesame_sim::TraceDetail` payloads; see `sesame-verify` for the event
//! taxonomy) plus post-run machine statistics into:
//!
//! * a hierarchical [`MetricRegistry`] (`node/<n>/lock/<l>/...` keys over
//!   the `sesame-sim` measurement primitives);
//! * simulated-time spans on a [`Timeline`] (lock sections, optimistic
//!   sections, rollback instants, message-in-flight and root-sequencing
//!   intervals);
//! * a cross-node [`CausalDag`] (cause→effect chains, rollback blame,
//!   critical-path extraction) assembled from the `"cause"` records the
//!   machine emits while tracing;
//! * deterministic exporters: a stable JSON [`Snapshot`] schema, CSV,
//!   Chrome trace-event / Perfetto JSON (including cross-track causal
//!   flow arrows), and causal-DAG JSON / Graphviz DOT.
//!
//! [`Telemetry`] is the façade: it implements
//! [`TraceObserver`](sesame_sim::TraceObserver), so a run wired through
//! `sesame_dsm::run_observed` feeds it online with zero cost when no
//! observer is attached (trace call sites never format or allocate).
//! Everything is deterministic — two runs with the same seed produce
//! byte-identical exports.
//!
//! ```
//! use sesame_sim::{SimTime, TraceDetail, TraceEntry};
//! use sesame_telemetry::Telemetry;
//!
//! let mut t = Telemetry::new("demo", 7).with_timeline(true);
//! for (ns, kind) in [(10, "lock-acquire"), (40, "ev-acquired"), (90, "ev-released")] {
//!     t.observe(&TraceEntry {
//!         time: SimTime::from_nanos(ns),
//!         actor: 0,
//!         kind,
//!         detail: TraceDetail::Var { var: 0 },
//!     });
//! }
//! t.finish(SimTime::from_nanos(100));
//! let snapshot = t.snapshot();
//! assert_eq!(snapshot.metrics.len(), 2); // wait + hold histograms
//! assert!(t.chrome_trace().contains("hold v0"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod causal;
pub mod json;
mod observer;
mod registry;
mod report;
mod series;
mod snapshot;
mod timeline;

use std::cell::RefCell;
use std::rc::Rc;

use sesame_sim::{SimDur, SimTime};

pub use causal::{CausalDag, CausalNode, CriticalPath};
pub use registry::{Metric, MetricRegistry};
pub use report::render_report;
pub use series::{render_series_report, SeriesExport, SeriesWindow, TimeSeries, SERIES_SCHEMA};
pub use snapshot::{Snapshot, SnapshotValue, SCHEMA};
pub use timeline::{cat, Timeline};

/// The observability façade: registry + timeline + the trace-observer
/// state that builds spans from the event stream.
#[derive(Debug, Clone)]
pub struct Telemetry {
    scenario: String,
    seed: u64,
    registry: MetricRegistry,
    timeline: Timeline,
    timeline_enabled: bool,
    end: SimTime,
    state: observer::SpanState,
    causal: causal::CausalState,
    series: Option<TimeSeries>,
}

impl Telemetry {
    /// Creates telemetry for one run of `scenario` with workload `seed`.
    /// Timeline collection starts disabled; see [`Telemetry::with_timeline`].
    pub fn new(scenario: &str, seed: u64) -> Self {
        Telemetry {
            scenario: scenario.to_string(),
            seed,
            registry: MetricRegistry::new(),
            timeline: Timeline::new(),
            timeline_enabled: false,
            end: SimTime::ZERO,
            state: observer::SpanState::default(),
            causal: causal::CausalState::default(),
            series: None,
        }
    }

    /// Enables (or disables) timeline span collection.
    pub fn with_timeline(mut self, enabled: bool) -> Self {
        self.timeline_enabled = enabled;
        self
    }

    /// Enables windowed time-series collection with the given window width.
    ///
    /// # Panics
    ///
    /// Panics on a zero-width window (see [`TimeSeries::new`]).
    pub fn with_series(mut self, window: SimDur) -> Self {
        self.series = Some(TimeSeries::new(window));
        self
    }

    /// Wraps this telemetry for use as a shared
    /// [`TraceObserver`](sesame_sim::TraceObserver) (what
    /// `sesame_dsm::run_observed` takes). Unwrap with
    /// [`Telemetry::unwrap_shared`] after the run.
    pub fn shared(self) -> Rc<RefCell<Telemetry>> {
        Rc::new(RefCell::new(self))
    }

    /// Recovers the telemetry from its shared wrapper.
    ///
    /// # Panics
    ///
    /// Panics while other clones of the `Rc` are still alive — drop the
    /// `RunResult` (whose trace recorder holds the observer) first.
    pub fn unwrap_shared(shared: Rc<RefCell<Telemetry>>) -> Telemetry {
        Rc::try_unwrap(shared)
            .expect("telemetry still shared; drop the run result first")
            .into_inner()
    }

    /// The metric registry (for direct post-run instrumentation).
    pub fn registry_mut(&mut self) -> &mut MetricRegistry {
        &mut self.registry
    }

    /// The metric registry, read-only.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// The collected timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Whether timeline span collection is on.
    pub fn timeline_enabled(&self) -> bool {
        self.timeline_enabled
    }

    /// The scenario label given at construction.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// The simulated end time recorded by [`Telemetry::finish`].
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Takes the JSON-exportable snapshot of every metric. Call after
    /// [`Telemetry::finish`] so time-weighted averages cover the full run.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot(&self.scenario, self.seed, self.end)
    }

    /// Renders the timeline as Chrome trace-event JSON.
    pub fn chrome_trace(&self) -> String {
        self.timeline.to_chrome_trace()
    }

    /// The causal DAG assembled from the run's `"cause"` records.
    pub fn causes(&self) -> &CausalDag {
        &self.causal.dag
    }

    /// The causal DAG as deterministic `sesame-causes/v1` JSON.
    pub fn causes_json(&self) -> String {
        self.causal.dag.to_json()
    }

    /// The causal DAG as deterministic Graphviz DOT.
    pub fn causes_dot(&self) -> String {
        self.causal.dag.to_dot()
    }

    /// The live time-series aggregator, when enabled.
    pub fn series(&self) -> Option<&TimeSeries> {
        self.series.as_ref()
    }

    /// The exportable time series (call after [`Telemetry::finish`] so
    /// empty-window padding covers the full run), when enabled.
    pub fn series_export(&self) -> Option<SeriesExport> {
        self.series
            .as_ref()
            .map(|s| s.export(&self.scenario, self.seed))
    }

    /// The time series as deterministic `sesame-series/v1` JSON, when enabled.
    pub fn series_json(&self) -> Option<String> {
        self.series_export().map(|e| e.to_json())
    }

    /// The time series as deterministic CSV, when enabled.
    pub fn series_csv(&self) -> Option<String> {
        self.series_export().map(|e| e.to_csv())
    }
}
