//! Hierarchical metric registry.
//!
//! Metrics live under slash-separated keys such as
//! `node/3/lock/0/wait` or `gwc/grants`, mapped over the measurement
//! primitives from `sesame-sim` ([`Counter`], [`MeanVar`], [`Histogram`],
//! [`TimeWeighted`]) plus a plain [`Metric::Gauge`] for post-run scalars.
//!
//! Keys are stored in a `BTreeMap`, so iteration — and therefore every
//! export — is deterministic. Accessors create the metric on first use; a
//! key always keeps the kind it was created with (mismatched access is a
//! bug in the instrumentation and panics).

use std::collections::BTreeMap;

use sesame_sim::{Counter, Histogram, MeanVar, TimeWeighted};

/// One registered metric.
///
/// `Histogram` dominates the size (fixed bucket array), but metrics only
/// ever live as `BTreeMap` values, so the footprint is per-key anyway and
/// indirection would just cost a pointer chase on the hot record path.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum Metric {
    /// Monotone event counter.
    Counter(Counter),
    /// Instantaneous scalar set once (e.g. an efficiency ratio).
    Gauge(f64),
    /// Streaming mean/variance of unitless samples.
    MeanVar(MeanVar),
    /// Log₂-bucketed duration histogram.
    Histogram(Histogram),
    /// Time-weighted average of a piecewise-constant signal.
    TimeWeighted(TimeWeighted),
}

impl Metric {
    /// Short kind tag used in exports ("counter", "gauge", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::MeanVar(_) => "meanvar",
            Metric::Histogram(_) => "histogram",
            Metric::TimeWeighted(_) => "timeweighted",
        }
    }
}

/// A deterministic map from hierarchical keys to metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    metrics: BTreeMap<String, Metric>,
}

macro_rules! accessor {
    ($fn_name:ident, $variant:ident, $ty:ty, $default:expr) => {
        /// Returns the metric at `key`, creating it on first use.
        ///
        /// # Panics
        ///
        /// Panics if `key` already holds a metric of a different kind.
        pub fn $fn_name(&mut self, key: &str) -> &mut $ty {
            if !self.metrics.contains_key(key) {
                self.metrics
                    .insert(key.to_string(), Metric::$variant($default));
            }
            match self.metrics.get_mut(key).expect("just inserted") {
                Metric::$variant(m) => m,
                other => panic!(
                    "metric '{key}' is a {}, accessed as {}",
                    other.kind(),
                    stringify!($fn_name)
                ),
            }
        }
    };
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    accessor!(counter, Counter, Counter, Counter::new());
    accessor!(gauge, Gauge, f64, 0.0);
    accessor!(mean_var, MeanVar, MeanVar, MeanVar::new());
    accessor!(histogram, Histogram, Histogram, Histogram::new());
    accessor!(
        time_weighted,
        TimeWeighted,
        TimeWeighted,
        TimeWeighted::default()
    );

    /// The metric at `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Metric> {
        self.metrics.get(key)
    }

    /// The value of the counter at `key`, or 0 when absent.
    pub fn counter_value(&self, key: &str) -> u64 {
        match self.metrics.get(key) {
            Some(Metric::Counter(c)) => c.value(),
            _ => 0,
        }
    }

    /// All metrics in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Sums the values of every counter whose key matches
    /// `prefix/.../suffix` — e.g. `sum_counters("node", "lock/0/opt/wins")`
    /// totals that per-node counter across nodes.
    pub fn sum_counters(&self, prefix: &str, suffix: &str) -> u64 {
        self.metrics
            .range(format!("{prefix}/")..format!("{prefix}0"))
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, m)| match m {
                Metric::Counter(c) => c.value(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesame_sim::{SimDur, SimTime};

    #[test]
    fn accessors_create_then_reuse() {
        let mut r = MetricRegistry::new();
        r.counter("a/b").add(2);
        r.counter("a/b").incr();
        assert_eq!(r.counter_value("a/b"), 3);
        assert_eq!(r.counter_value("missing"), 0);
        r.histogram("h").record(SimDur::from_nanos(5));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_is_key_sorted() {
        let mut r = MetricRegistry::new();
        r.counter("z");
        r.counter("a");
        *r.gauge("m") = 1.5;
        let keys: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn kind_mismatch_panics() {
        let mut r = MetricRegistry::new();
        r.counter("k");
        r.histogram("k");
    }

    #[test]
    fn sum_counters_totals_per_node_keys() {
        let mut r = MetricRegistry::new();
        r.counter("node/0/lock/0/opt/wins").add(3);
        r.counter("node/10/lock/0/opt/wins").add(4);
        r.counter("node/2/lock/0/opt/rollbacks").add(9);
        r.counter("gwc/grants").add(100);
        assert_eq!(r.sum_counters("node", "opt/wins"), 7);
        assert_eq!(r.sum_counters("node", "opt/rollbacks"), 9);
        assert_eq!(r.sum_counters("node", "missing"), 0);
    }

    #[test]
    fn time_weighted_defaults_track_from_zero() {
        let mut r = MetricRegistry::new();
        r.time_weighted("q").set(SimTime::from_nanos(10), 2.0);
        let avg = r
            .iter()
            .find_map(|(k, m)| match (k, m) {
                ("q", Metric::TimeWeighted(tw)) => Some(tw.average(SimTime::from_nanos(20))),
                _ => None,
            })
            .unwrap();
        assert!((avg - 1.0).abs() < 1e-12);
    }
}
