//! Windowed time-series telemetry: the time dimension of observability.
//!
//! The snapshot exporter collapses a run to end-of-run scalars; this module
//! keeps the trajectory. A [`TimeSeries`] rides along inside [`Telemetry`]
//! (see [`Telemetry::with_series`](crate::Telemetry::with_series)) and
//! buckets selected trace events into fixed simulated-time windows:
//! rollbacks, optimism attempts/wins, completions, lock-wait closures (count
//! and total wait time, bucketed at grant time), packet and multicast sends,
//! and the per-variable maximum root/EC queue depth seen in the window.
//!
//! The export schema (`sesame-series/v1`) is stable and deterministic —
//! two same-seed runs produce byte-identical JSON and CSV. Top level:
//!
//! ```json
//! {
//!   "schema": "sesame-series/v1",
//!   "scenario": "contention",
//!   "seed": 7,
//!   "window_ns": 100000,
//!   "end_ns": 1234567,
//!   "windows": [ { "start_ns": 0, "rollbacks": 1, ...,
//!                  "queue_depth_max": { "0": 3 } }, ... ]
//! }
//! ```
//!
//! Empty windows are materialized (not skipped), so the series always covers
//! `[0, end)` with `ceil(end / window)` rows and plotting needs no gap
//! handling.

use std::collections::BTreeMap;

use sesame_sim::{SimDur, SimTime, TraceDetail, TraceEntry};

use crate::json::{self, Json};

/// Schema identifier written into (and required from) every series export.
pub const SERIES_SCHEMA: &str = "sesame-series/v1";

/// Aggregates for one fixed simulated-time window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesWindow {
    /// Optimistic rollbacks (`opt-rollback`) in the window.
    pub rollbacks: u64,
    /// Optimistic section entries (`opt-enter`).
    pub opt_attempts: u64,
    /// Optimistic completions with zero rollbacks, bucketed at completion.
    pub opt_wins: u64,
    /// Mutex completions (`mutex-complete`), optimistic or regular.
    pub completions: u64,
    /// Lock waits that *closed* in this window (bucketed at grant time).
    pub lock_waits: u64,
    /// Total simulated wait time of those closed waits, in nanoseconds.
    pub lock_wait_ns: u64,
    /// Point-to-point packet sends (`pkt-send`).
    pub packets: u64,
    /// Multicast sends (`pkt-mcast`).
    pub mcasts: u64,
    /// Maximum root/EC queue depth observed per variable.
    pub queue_depth_max: BTreeMap<u32, u32>,
}

/// The live windowed aggregator fed by the trace observer.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window: SimDur,
    windows: Vec<SeriesWindow>,
    wait_start: BTreeMap<(usize, u32), SimTime>,
    end: SimTime,
}

impl TimeSeries {
    /// Creates an aggregator with the given window width.
    ///
    /// # Panics
    ///
    /// Panics on a zero-width window.
    pub fn new(window: SimDur) -> Self {
        assert!(window.as_nanos() > 0, "series window must be > 0 ns");
        TimeSeries {
            window,
            windows: Vec::new(),
            wait_start: BTreeMap::new(),
            end: SimTime::ZERO,
        }
    }

    /// The configured window width.
    pub fn window(&self) -> SimDur {
        self.window
    }

    fn bucket(&mut self, t: SimTime) -> &mut SeriesWindow {
        let idx = (t.as_nanos() / self.window.as_nanos()) as usize;
        if self.windows.len() <= idx {
            self.windows.resize(idx + 1, SeriesWindow::default());
        }
        &mut self.windows[idx]
    }

    /// Buckets one trace record. Kinds the series does not track (including
    /// the `"cause"` stream) are ignored.
    pub fn observe(&mut self, e: &TraceEntry) {
        let t = e.time;
        match (e.kind, &e.detail) {
            ("mutex-enter" | "lock-acquire", &TraceDetail::Var { var }) => {
                self.wait_start.insert((e.actor, var), t);
            }
            ("ev-acquired" | "mutex-granted", &TraceDetail::Var { var }) => {
                if let Some(start) = self.wait_start.remove(&(e.actor, var)) {
                    let w = self.bucket(t);
                    w.lock_waits += 1;
                    w.lock_wait_ns += t.saturating_since(start).as_nanos();
                }
            }
            ("opt-enter", &TraceDetail::Var { .. }) => self.bucket(t).opt_attempts += 1,
            ("opt-rollback", &TraceDetail::Var { .. }) => self.bucket(t).rollbacks += 1,
            (
                "mutex-complete",
                &TraceDetail::Complete {
                    optimistic,
                    rollbacks,
                    ..
                },
            ) => {
                let w = self.bucket(t);
                w.completions += 1;
                if optimistic && rollbacks == 0 {
                    w.opt_wins += 1;
                }
            }
            ("root-queue" | "ec-queue", &TraceDetail::QueueDepth { var, depth }) => {
                let w = self.bucket(t);
                let entry = w.queue_depth_max.entry(var).or_insert(0);
                *entry = (*entry).max(depth);
            }
            ("pkt-send", &TraceDetail::Packet { .. }) => self.bucket(t).packets += 1,
            ("pkt-mcast", &TraceDetail::Multicast { .. }) => self.bucket(t).mcasts += 1,
            _ => {}
        }
    }

    /// Records the simulated end of the run and pads the series with empty
    /// windows so it covers `[0, end)`. Call once, after the run.
    pub fn finish(&mut self, end: SimTime) {
        self.end = end;
        let ns = end.as_nanos();
        let needed = (ns.div_ceil(self.window.as_nanos())) as usize;
        if self.windows.len() < needed {
            self.windows.resize(needed, SeriesWindow::default());
        }
    }

    /// Freezes the aggregator into its exportable form.
    pub fn export(&self, scenario: &str, seed: u64) -> SeriesExport {
        SeriesExport {
            scenario: scenario.to_string(),
            seed,
            window_ns: self.window.as_nanos(),
            end_ns: self.end.as_nanos(),
            windows: self.windows.clone(),
        }
    }
}

/// A parsed or freshly exported time series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesExport {
    /// Scenario label (e.g. `"contention"`).
    pub scenario: String,
    /// Workload seed the run used.
    pub seed: u64,
    /// Window width in nanoseconds.
    pub window_ns: u64,
    /// Simulated end time of the run, in nanoseconds.
    pub end_ns: u64,
    /// Per-window aggregates, oldest first, covering `[0, end_ns)`.
    pub windows: Vec<SeriesWindow>,
}

impl SeriesExport {
    /// Every variable that appears in any window's queue-depth map, sorted.
    pub fn vars(&self) -> Vec<u32> {
        let mut vars: Vec<u32> = self
            .windows
            .iter()
            .flat_map(|w| w.queue_depth_max.keys().copied())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Renders the series as schema-`v1` JSON text (one trailing newline).
    pub fn to_json(&self) -> String {
        let mut windows = Vec::with_capacity(self.windows.len());
        for (i, w) in self.windows.iter().enumerate() {
            let depths = w
                .queue_depth_max
                .iter()
                .map(|(var, depth)| (var.to_string(), Json::Num(f64::from(*depth))))
                .collect();
            windows.push(Json::Obj(vec![
                (
                    "start_ns".into(),
                    Json::Num((i as u64 * self.window_ns) as f64),
                ),
                ("rollbacks".into(), Json::Num(w.rollbacks as f64)),
                ("opt_attempts".into(), Json::Num(w.opt_attempts as f64)),
                ("opt_wins".into(), Json::Num(w.opt_wins as f64)),
                ("completions".into(), Json::Num(w.completions as f64)),
                ("lock_waits".into(), Json::Num(w.lock_waits as f64)),
                ("lock_wait_ns".into(), Json::Num(w.lock_wait_ns as f64)),
                ("packets".into(), Json::Num(w.packets as f64)),
                ("mcasts".into(), Json::Num(w.mcasts as f64)),
                ("queue_depth_max".into(), Json::Obj(depths)),
            ]));
        }
        let root = Json::Obj(vec![
            ("schema".into(), Json::Str(SERIES_SCHEMA.into())),
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("window_ns".into(), Json::Num(self.window_ns as f64)),
            ("end_ns".into(), Json::Num(self.end_ns as f64)),
            ("windows".into(), Json::Arr(windows)),
        ]);
        let mut text = root.render();
        text.push('\n');
        text
    }

    /// Renders the series as CSV: one row per window, one fixed column per
    /// scalar aggregate, and one `qmax_v<var>` column per variable that
    /// appears anywhere in the series.
    pub fn to_csv(&self) -> String {
        let vars = self.vars();
        let mut out = String::from(
            "window,start_ns,rollbacks,opt_attempts,opt_wins,completions,\
             lock_waits,lock_wait_ns,packets,mcasts",
        );
        for var in &vars {
            out.push_str(&format!(",qmax_v{var}"));
        }
        out.push('\n');
        for (i, w) in self.windows.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}",
                i,
                i as u64 * self.window_ns,
                w.rollbacks,
                w.opt_attempts,
                w.opt_wins,
                w.completions,
                w.lock_waits,
                w.lock_wait_ns,
                w.packets,
                w.mcasts,
            ));
            for var in &vars {
                out.push_str(&format!(
                    ",{}",
                    w.queue_depth_max.get(var).copied().unwrap_or(0)
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Parses and validates schema-`v1` JSON text back into a series.
    ///
    /// Rejects a wrong/missing schema tag, missing top-level members, and
    /// window objects with missing or mistyped fields — the series
    /// counterpart of [`Snapshot::from_json`](crate::Snapshot::from_json).
    pub fn from_json(text: &str) -> Result<SeriesExport, String> {
        let root = json::parse(text)?;
        let schema = root
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing 'schema'")?;
        if schema != SERIES_SCHEMA {
            return Err(format!(
                "unsupported schema '{schema}' (want '{SERIES_SCHEMA}')"
            ));
        }
        let scenario = root
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("missing 'scenario'")?
            .to_string();
        let seed = root
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("missing 'seed'")?;
        let window_ns = root
            .get("window_ns")
            .and_then(Json::as_u64)
            .ok_or("missing 'window_ns'")?;
        if window_ns == 0 {
            return Err("'window_ns' must be > 0".to_string());
        }
        let end_ns = root
            .get("end_ns")
            .and_then(Json::as_u64)
            .ok_or("missing 'end_ns'")?;
        let elements = root
            .get("windows")
            .and_then(Json::elements)
            .ok_or("missing 'windows' array")?;
        let mut windows = Vec::with_capacity(elements.len());
        for (i, obj) in elements.iter().enumerate() {
            let u64_of = |field: &str| {
                obj.get(field)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("window {i}: missing field '{field}'"))
            };
            let start_ns = u64_of("start_ns")?;
            if start_ns != i as u64 * window_ns {
                return Err(format!(
                    "window {i}: start_ns {start_ns} != index * window_ns"
                ));
            }
            let members = obj
                .get("queue_depth_max")
                .and_then(Json::members)
                .ok_or_else(|| format!("window {i}: missing 'queue_depth_max' object"))?;
            let mut queue_depth_max = BTreeMap::new();
            for (key, value) in members {
                let var: u32 = key
                    .parse()
                    .map_err(|_| format!("window {i}: bad variable key '{key}'"))?;
                let depth = value
                    .as_u64()
                    .and_then(|d| u32::try_from(d).ok())
                    .ok_or_else(|| format!("window {i}: bad depth for variable '{key}'"))?;
                queue_depth_max.insert(var, depth);
            }
            windows.push(SeriesWindow {
                rollbacks: u64_of("rollbacks")?,
                opt_attempts: u64_of("opt_attempts")?,
                opt_wins: u64_of("opt_wins")?,
                completions: u64_of("completions")?,
                lock_waits: u64_of("lock_waits")?,
                lock_wait_ns: u64_of("lock_wait_ns")?,
                packets: u64_of("packets")?,
                mcasts: u64_of("mcasts")?,
                queue_depth_max,
            });
        }
        Ok(SeriesExport {
            scenario,
            seed,
            window_ns,
            end_ns,
            windows,
        })
    }
}

/// Renders the series as a plain-text per-window table — the time-resolved
/// companion of [`render_report`](crate::render_report), appended to
/// `sesame report` output when a series is available.
pub fn render_series_report(series: &SeriesExport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\ntime series: {} windows of {} ns (scenario: {}, seed: {})\n",
        series.windows.len(),
        series.window_ns,
        series.scenario,
        series.seed
    ));
    if series.windows.is_empty() {
        return out;
    }
    out.push_str(&format!(
        "{:>4} {:>12} {:>8} {:>6} {:>6} {:>9} {:>9} {:>6} {:>12} {:>6} {:>6}\n",
        "win",
        "start-ns",
        "opt-try",
        "wins",
        "hit%",
        "rolls",
        "complete",
        "waits",
        "wait-mean",
        "pkts",
        "qmax"
    ));
    for (i, w) in series.windows.iter().enumerate() {
        let hit = if w.opt_attempts > 0 {
            format!("{:.0}%", 100.0 * w.opt_wins as f64 / w.opt_attempts as f64)
        } else {
            "-".to_string()
        };
        let wait_mean = w
            .lock_wait_ns
            .checked_div(w.lock_waits)
            .map_or_else(|| "-".to_string(), |mean| format!("{mean}ns"));
        let qmax = w.queue_depth_max.values().copied().max().unwrap_or(0);
        out.push_str(&format!(
            "{:>4} {:>12} {:>8} {:>6} {:>6} {:>9} {:>9} {:>6} {:>12} {:>6} {:>6}\n",
            i,
            i as u64 * series.window_ns,
            w.opt_attempts,
            w.opt_wins,
            hit,
            w.rollbacks,
            w.completions,
            w.lock_waits,
            wait_mean,
            w.packets,
            qmax,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ns: u64, actor: usize, kind: &'static str, detail: TraceDetail) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_nanos(ns),
            actor,
            kind,
            detail,
        }
    }

    fn sample_series() -> TimeSeries {
        let mut s = TimeSeries::new(SimDur::from_nanos(100));
        let var = |var| TraceDetail::Var { var };
        // Window 0: an attempt that rolls back; queue builds up.
        s.observe(&entry(10, 0, "opt-enter", var(0)));
        s.observe(&entry(20, 1, "pkt-send", pkt()));
        s.observe(&entry(
            30,
            0,
            "root-queue",
            TraceDetail::QueueDepth { var: 0, depth: 2 },
        ));
        s.observe(&entry(40, 0, "opt-rollback", var(0)));
        // Window 1: wait opened in window 0 closes here (bucketed at grant),
        // then a clean optimistic completion.
        s.observe(&entry(90, 2, "lock-acquire", var(1)));
        s.observe(&entry(130, 2, "ev-acquired", var(1)));
        s.observe(&entry(
            180,
            2,
            "mutex-complete",
            TraceDetail::Complete {
                var: 1,
                optimistic: true,
                rollbacks: 0,
                overlapped: false,
            },
        ));
        s.finish(SimTime::from_nanos(420));
        s
    }

    fn pkt() -> TraceDetail {
        TraceDetail::Packet {
            from: 1,
            to: 0,
            bytes: 16,
            hops: 1,
            arrival_ns: 60,
        }
    }

    #[test]
    fn buckets_by_window_and_pads_to_end() {
        let s = sample_series();
        let e = s.export("demo", 7);
        // finish(420) with 100 ns windows → 5 windows covering [0, 500).
        assert_eq!(e.windows.len(), 5);
        assert_eq!(e.windows[0].opt_attempts, 1);
        assert_eq!(e.windows[0].rollbacks, 1);
        assert_eq!(e.windows[0].packets, 1);
        assert_eq!(e.windows[0].queue_depth_max.get(&0), Some(&2));
        // The wait closed at t=130 → window 1, with the full 40 ns of wait.
        assert_eq!(e.windows[1].lock_waits, 1);
        assert_eq!(e.windows[1].lock_wait_ns, 40);
        assert_eq!(e.windows[1].completions, 1);
        assert_eq!(e.windows[1].opt_wins, 1);
        assert_eq!(e.windows[2], SeriesWindow::default());
        assert_eq!(e.vars(), vec![0]);
    }

    #[test]
    fn json_round_trips_exactly() {
        let e = sample_series().export("demo", 7);
        let text = e.to_json();
        assert!(text.contains(r#""schema":"sesame-series/v1""#));
        let back = SeriesExport::from_json(&text).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn validation_rejects_bad_schema_and_shape() {
        assert!(SeriesExport::from_json("{}").is_err());
        assert!(SeriesExport::from_json(r#"{"schema":"other/v9"}"#).is_err());
        let missing = format!(
            r#"{{"schema":"{SERIES_SCHEMA}","scenario":"s","seed":1,"window_ns":100,"end_ns":50,"windows":[{{"start_ns":0,"rollbacks":1,"opt_wins":0,"completions":0,"lock_waits":0,"lock_wait_ns":0,"packets":0,"mcasts":0,"queue_depth_max":{{}}}}]}}"#
        );
        let err = SeriesExport::from_json(&missing).unwrap_err();
        assert!(err.contains("opt_attempts"), "err: {err}");
        let bad_start = format!(
            r#"{{"schema":"{SERIES_SCHEMA}","scenario":"s","seed":1,"window_ns":100,"end_ns":50,"windows":[{{"start_ns":7,"rollbacks":0,"opt_attempts":0,"opt_wins":0,"completions":0,"lock_waits":0,"lock_wait_ns":0,"packets":0,"mcasts":0,"queue_depth_max":{{}}}}]}}"#
        );
        let err = SeriesExport::from_json(&bad_start).unwrap_err();
        assert!(err.contains("start_ns"), "err: {err}");
        let zero_window = format!(
            r#"{{"schema":"{SERIES_SCHEMA}","scenario":"s","seed":1,"window_ns":0,"end_ns":50,"windows":[]}}"#
        );
        assert!(SeriesExport::from_json(&zero_window).is_err());
    }

    #[test]
    fn csv_has_fixed_and_per_var_columns() {
        let e = sample_series().export("demo", 7);
        let csv = e.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("window,start_ns,rollbacks"), "{header}");
        assert!(header.ends_with("qmax_v0"), "{header}");
        assert_eq!(lines.next().unwrap(), "0,0,1,1,0,0,0,0,1,0,2");
        assert_eq!(lines.next().unwrap(), "1,100,0,0,1,1,1,40,0,0,0");
        assert_eq!(csv.lines().count(), 6);
    }

    #[test]
    fn report_table_renders_hit_rate_and_wait_mean() {
        let e = sample_series().export("demo", 7);
        let table = render_series_report(&e);
        assert!(table.contains("5 windows of 100 ns"), "{table}");
        // Window 0: the lone attempt rolled back → 0% hit rate; window 1
        // has a win but no attempt (bucketed at completion) → "-".
        assert!(table.contains("0%"), "{table}");
        assert!(table.contains("40ns"), "{table}");
        // Empty windows render with "-" placeholders, not division by zero.
        assert!(table.lines().count() > 6, "{table}");
    }

    #[test]
    fn empty_series_has_no_windows_until_finish() {
        let mut s = TimeSeries::new(SimDur::from_nanos(100));
        s.finish(SimTime::ZERO);
        let e = s.export("empty", 0);
        assert!(e.windows.is_empty());
        assert_eq!(e.vars(), Vec::<u32>::new());
        let back = SeriesExport::from_json(&e.to_json()).unwrap();
        assert_eq!(back, e);
        assert_eq!(e.to_csv().lines().count(), 1);
        assert!(render_series_report(&e).contains("0 windows"));
    }
}
