//! Minimal JSON value type, writer, and parser.
//!
//! The workspace builds offline with no external dependencies, so the
//! telemetry exporters carry their own tiny JSON layer. It covers exactly
//! what the snapshot and timeline schemas need: objects with string keys,
//! arrays, finite numbers, strings, and booleans.
//!
//! Writing is deterministic: object members are emitted in insertion order
//! (snapshots insert from a `BTreeMap`, so key order is sorted and stable),
//! and numbers are formatted with a single fixed rule.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite inputs are written as `0`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from a sorted map.
    pub fn from_map(map: BTreeMap<String, Json>) -> Json {
        Json::Obj(map.into_iter().collect())
    }

    /// The value of member `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value's members, if it is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// This value's elements, if it is an array.
    pub fn elements(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&fmt_num(*x)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats a number deterministically: integers without a fraction,
/// everything else via shortest round-trip `Display`, non-finite as `0`.
pub fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        return "0".to_string();
    }
    if x.fract() == 0.0 && x.abs() < 9.0e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Json`] value.
///
/// Accepts the standard grammar (with the usual `\uXXXX` escapes, including
/// surrogate pairs). Returns a descriptive error on malformed input or
/// trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        let b = self
            .peek()
            .ok_or_else(|| "unterminated escape".to_string())?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: expect the low half immediately after.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00) & 0x3ff)
                    } else {
                        return Err("lone high surrogate".to_string());
                    }
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| "invalid \\u escape".to_string())?
            }
            _ => return Err(format!("bad escape '\\{}'", b as char)),
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| "truncated \\u escape".to_string())?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| "non-hex \\u escape".to_string())?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_compound_values() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c".into(), Json::Str("x \"y\"\n".into())),
            ("d".into(), Json::Num(1.5)),
        ]);
        let text = v.render();
        assert_eq!(text, r#"{"a":1,"b":[true,null],"c":"x \"y\"\n","d":1.5}"#);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = parse(r#"{"s":"A😀","n":-2.5e2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("A\u{1F600}"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-250.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn non_finite_numbers_render_as_zero() {
        assert_eq!(fmt_num(f64::NAN), "0");
        assert_eq!(fmt_num(f64::INFINITY), "0");
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(0.25), "0.25");
    }

    #[test]
    fn accessors_distinguish_kinds() {
        let v = parse(r#"{"k":[1,2]}"#).unwrap();
        assert!(v.get("k").unwrap().elements().is_some());
        assert_eq!(v.get("k").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
    }
}
