//! Human-readable per-node / per-lock summary of a [`Snapshot`] — the
//! output of `sesame report`.

use std::collections::BTreeSet;

use crate::snapshot::{Snapshot, SnapshotValue};

/// Renders the snapshot as a plain-text report: a run header, a per-node /
/// per-lock table (optimism attempts/wins/rollbacks, wait/hold means, and
/// wait-latency percentiles), the rollback-attribution table (which shared
/// variables and remote writers caused the rollbacks), and the global
/// counters.
pub fn render_report(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "scenario: {}   seed: {}   simulated end: {} ns\n",
        snap.scenario, snap.seed, snap.end_ns
    ));

    // Collect the (node, lock) pairs that have any per-lock metric.
    let mut pairs: BTreeSet<(u64, u64)> = BTreeSet::new();
    for key in snap.metrics.keys() {
        if let Some((node, lock)) = parse_node_lock(key) {
            pairs.insert((node, lock));
        }
    }
    if !pairs.is_empty() {
        out.push_str(&format!(
            "\n{:>5} {:>5} {:>9} {:>9} {:>6} {:>6} {:>10} {:>13} {:>13} {:>10} {:>10} {:>10}\n",
            "node",
            "lock",
            "opt-try",
            "reg-try",
            "wins",
            "rolls",
            "complete",
            "wait-mean",
            "hold-mean",
            "wait-p50",
            "wait-p90",
            "wait-p99"
        ));
        for (node, lock) in pairs {
            let k = |leaf: &str| format!("node/{node}/lock/{lock}/{leaf}");
            let (p50, p90, p99) = hist_quantiles(snap, &k("wait"));
            out.push_str(&format!(
                "{:>5} {:>5} {:>9} {:>9} {:>6} {:>6} {:>10} {:>13} {:>13} {:>10} {:>10} {:>10}\n",
                node,
                lock,
                snap.counter(&k("opt/attempts")),
                snap.counter(&k("reg/attempts")),
                snap.counter(&k("opt/wins")),
                snap.counter(&k("opt/rollbacks")),
                snap.counter(&k("completions")),
                hist_mean(snap, &k("wait")),
                hist_mean(snap, &k("hold")),
                p50,
                p90,
                p99,
            ));
        }
    }

    // Rollback attribution: which (variable, remote writer) pairs forced
    // rollbacks, heaviest first.
    let mut blame: Vec<(u64, u64, u64)> = Vec::new();
    for (key, value) in &snap.metrics {
        if let (Some((var, writer)), SnapshotValue::Counter(n)) = (parse_blame(key), value) {
            blame.push((*n, var, writer));
        }
    }
    if !blame.is_empty() {
        blame.sort_by(|a, b| (b.0, a.1, a.2).cmp(&(a.0, b.1, b.2)));
        out.push_str("\nrollback attribution (conflicting writes, heaviest first):\n");
        out.push_str(&format!(
            "{:>5} {:>7} {:>10}\n",
            "var", "writer", "rollbacks"
        ));
        for (count, var, writer) in blame.iter().take(10) {
            out.push_str(&format!("{var:>5} {writer:>7} {count:>10}\n"));
        }
    }

    let opt_attempts = snap.sum_counters("node/", "/opt/attempts");
    if opt_attempts > 0 {
        let wins = snap.sum_counters("node/", "/opt/wins");
        let rolls = snap.sum_counters("node/", "/opt/rollbacks");
        out.push_str(&format!(
            "\noptimism: {opt_attempts} attempts, {wins} wins ({:.1}% hit rate), {rolls} rollbacks\n",
            100.0 * wins as f64 / opt_attempts as f64
        ));
    }

    // Global (non-node, non-group) scalars.
    let mut wrote_header = false;
    for (key, value) in &snap.metrics {
        if key.starts_with("node/") || key.starts_with("group/") || key.starts_with("blame/") {
            continue;
        }
        if !wrote_header {
            out.push_str("\nglobals:\n");
            wrote_header = true;
        }
        let rendered = match value {
            SnapshotValue::Counter(v) => v.to_string(),
            SnapshotValue::Gauge(v) => format!("{v:.4}"),
            SnapshotValue::Histogram { count, mean_ns, .. } => {
                format!("n={count} mean={mean_ns}ns")
            }
            SnapshotValue::MeanVar { count, mean, .. } => format!("n={count} mean={mean:.3}"),
            SnapshotValue::TimeWeighted { average, .. } => format!("avg={average:.3}"),
        };
        out.push_str(&format!("  {key:<32} {rendered}\n"));
    }
    out
}

/// Extracts `(node, lock)` from a `node/<n>/lock/<l>/...` key.
fn parse_node_lock(key: &str) -> Option<(u64, u64)> {
    let rest = key.strip_prefix("node/")?;
    let (node, rest) = rest.split_once('/')?;
    let rest = rest.strip_prefix("lock/")?;
    let (lock, _) = rest.split_once('/')?;
    Some((node.parse().ok()?, lock.parse().ok()?))
}

/// Extracts `(var, writer)` from a `blame/var/<v>/writer/<w>` key.
fn parse_blame(key: &str) -> Option<(u64, u64)> {
    let rest = key.strip_prefix("blame/var/")?;
    let (var, rest) = rest.split_once('/')?;
    let writer = rest.strip_prefix("writer/")?;
    Some((var.parse().ok()?, writer.parse().ok()?))
}

/// The mean of the histogram at `key` as `"<n>ns"`, or `"-"` when absent.
fn hist_mean(snap: &Snapshot, key: &str) -> String {
    match snap.metrics.get(key) {
        Some(SnapshotValue::Histogram { mean_ns, .. }) => format!("{mean_ns}ns"),
        _ => "-".to_string(),
    }
}

/// The p50/p90/p99 of the histogram at `key` as `"<n>ns"` triples, or
/// `"-"` when absent.
fn hist_quantiles(snap: &Snapshot, key: &str) -> (String, String, String) {
    match snap.metrics.get(key) {
        Some(SnapshotValue::Histogram {
            p50_ns,
            p90_ns,
            p99_ns,
            ..
        }) => (
            format!("{p50_ns}ns"),
            format!("{p90_ns}ns"),
            format!("{p99_ns}ns"),
        ),
        _ => ("-".to_string(), "-".to_string(), "-".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricRegistry;
    use sesame_sim::{SimDur, SimTime};

    #[test]
    fn report_has_table_rows_and_totals() {
        let mut r = MetricRegistry::new();
        r.counter("node/0/lock/0/opt/attempts").add(4);
        r.counter("node/0/lock/0/opt/wins").add(3);
        r.counter("node/0/lock/0/opt/rollbacks").add(1);
        r.counter("node/0/lock/0/completions").add(4);
        r.counter("node/3/lock/0/reg/attempts").add(2);
        r.histogram("node/0/lock/0/wait")
            .record(SimDur::from_nanos(200));
        r.counter("net/packets").add(17);
        let snap = r.snapshot("contention", 9, SimTime::from_nanos(5000));
        let report = render_report(&snap);
        assert!(report.contains("scenario: contention"));
        assert!(report.contains("200ns"), "{report}");
        assert!(report.contains("75.0% hit rate"), "{report}");
        assert!(report.contains("net/packets"), "{report}");
        // Two table rows: (0,0) and (3,0).
        assert!(report.contains("\n    0     0"), "{report}");
        assert!(report.contains("\n    3     0"), "{report}");
    }

    #[test]
    fn percentile_columns_and_blame_table() {
        let mut r = MetricRegistry::new();
        for ns in [100u64, 200, 400, 800] {
            r.histogram("node/1/lock/0/wait")
                .record(SimDur::from_nanos(ns));
        }
        r.counter("blame/var/0/writer/2").add(5);
        r.counter("blame/var/1/writer/0").add(2);
        let snap = r.snapshot("contention", 9, SimTime::from_nanos(5000));
        let report = render_report(&snap);
        assert!(report.contains("wait-p50"), "{report}");
        assert!(report.contains("wait-p99"), "{report}");
        assert!(report.contains("rollback attribution"), "{report}");
        // Heaviest blame row first; blame keys stay out of the globals.
        let heavy = report.find("    0       2          5").expect("blame row");
        let light = report.find("    1       0          2").expect("blame row");
        assert!(heavy < light, "{report}");
        assert!(!report.contains("blame/var"), "{report}");
    }

    #[test]
    fn node_lock_key_parsing() {
        assert_eq!(parse_node_lock("node/3/lock/0/wait"), Some((3, 0)));
        assert_eq!(parse_node_lock("node/3/net/packets"), None);
        assert_eq!(parse_node_lock("gwc/grants"), None);
    }

    #[test]
    fn empty_snapshot_renders_only_the_header() {
        let r = MetricRegistry::new();
        let snap = r.snapshot("contention", 9, SimTime::ZERO);
        let report = render_report(&snap);
        assert!(report.starts_with("scenario: contention"), "{report}");
        assert!(!report.contains("wait-p50"), "{report}");
        assert!(!report.contains("rollback attribution"), "{report}");
        assert!(!report.contains("optimism:"), "{report}");
        assert!(!report.contains("globals:"), "{report}");
        assert_eq!(report.lines().count(), 1, "{report}");
    }

    #[test]
    fn zero_optimistic_attempts_suppress_the_optimism_line() {
        // A purely regular-locking run: the per-lock table renders, but
        // there is no optimism summary (it would divide by zero) and no
        // attribution table (nothing rolled back).
        let mut r = MetricRegistry::new();
        r.counter("node/0/lock/0/reg/attempts").add(6);
        r.counter("node/0/lock/0/completions").add(6);
        let snap = r.snapshot("three-cpu", 1, SimTime::from_nanos(100));
        let report = render_report(&snap);
        assert!(report.contains("reg-try"), "{report}");
        assert!(!report.contains("optimism:"), "{report}");
        assert!(!report.contains("rollback attribution"), "{report}");
    }

    #[test]
    fn blame_table_truncates_to_the_ten_heaviest_rows() {
        let mut r = MetricRegistry::new();
        for var in 0..14u64 {
            r.counter(&format!("blame/var/{var}/writer/1"))
                .add(100 - var);
        }
        let snap = r.snapshot("contention", 9, SimTime::from_nanos(100));
        let report = render_report(&snap);
        let start = report.find("rollback attribution").expect("attribution");
        // Title + column header, then exactly the 10 heaviest data rows;
        // vars 10..13 (counts 90..87) are cut.
        let rows: Vec<&str> = report[start..]
            .lines()
            .skip(2)
            .take_while(|l| !l.trim().is_empty())
            .collect();
        assert_eq!(rows.len(), 10, "{report}");
        assert!(report.contains(" 100\n"), "{report}");
        assert!(!report.contains(" 90\n"), "{report}");
    }
}
