//! The causal DAG: cross-node cause→effect chains rebuilt from the
//! trace stream.
//!
//! The simulation side emits one `"cause"` record per protocol action
//! (see `sesame_dsm::CauseCtx`), carrying the action's [`CauseId`] raw
//! value, its parent id, and a typed [`CauseOp`]. By convention each
//! `"cause"` record follows the canonical record it annotates on the same
//! actor at the same simulated time, so the builder here pairs the two and
//! labels every DAG node with the canonical event kind. Rollback nodes
//! additionally absorb the `"opt-conflict"` record that names the shared
//! variable and the remote writer whose sequenced write invalidated the
//! optimistic section — the blame report.
//!
//! The DAG is a forest: ids count up deterministically from 1, parents
//! always precede children in the stream, and `cause = 0` marks a root
//! (a spontaneous program start, or an action whose provenance was not
//! tracked). Exports (JSON and Graphviz DOT) iterate in id order, so two
//! same-seed runs produce byte-identical bytes.
//!
//! [`CauseId`]: sesame_net::CauseId

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sesame_sim::{CauseOp, SimTime, TraceDetail, TraceEntry};

/// One action in the causal forest.
#[derive(Debug, Clone)]
pub struct CausalNode {
    /// This action's causal id (raw; never 0).
    pub id: u64,
    /// The parent action's id, or 0 for a root.
    pub cause: u64,
    /// What kind of protocol action this was.
    pub op: CauseOp,
    /// The node (trace actor) that performed the action.
    pub actor: usize,
    /// When the action happened.
    pub time: SimTime,
    /// The canonical trace kind this cause annotates (the record emitted
    /// immediately before it), or `""` when no record paired.
    pub kind: &'static str,
    /// For rollback nodes: the conflicting shared variable and the remote
    /// writer whose sequenced write forced the rollback.
    pub conflict: Option<(u32, u32)>,
}

/// The assembled causal forest, keyed by raw causal id.
#[derive(Debug, Clone, Default)]
pub struct CausalDag {
    nodes: BTreeMap<u64, CausalNode>,
}

/// The longest cause→effect chain in the DAG, with its simulated time
/// split into edge categories.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Node ids from the chain's root to its final action.
    pub ids: Vec<u64>,
    /// Time of the first action on the chain.
    pub start: SimTime,
    /// Time of the last action on the chain.
    pub end: SimTime,
    /// Time under message transmission (parent was a send or multicast).
    pub flight_ns: u64,
    /// Time under an optimistic/compute section (parent was a compute).
    pub hold_ns: u64,
    /// Time waiting on root-side ordering (child is a sequencing decision).
    pub sequencing_ns: u64,
    /// Everything else: queueing and scheduling waits — including the lead
    /// from run start (t = 0) to the chain's first action.
    pub wait_ns: u64,
}

impl CriticalPath {
    /// Total simulated time from run start (t = 0) to the chain's last
    /// action. The per-category splits telescope:
    /// `flight + hold + sequencing + wait == total` — and when the chain
    /// ends at the run's final event, `total` equals the run's final
    /// simulated time.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.end.as_nanos()
    }
}

/// How one parent→child edge on the critical path spends its time.
fn edge_category(parent: CauseOp, child: CauseOp) -> &'static str {
    match parent {
        CauseOp::Send | CauseOp::Mcast => "flight",
        CauseOp::Compute => "hold",
        _ => match child {
            CauseOp::Seq | CauseOp::Grant | CauseOp::Filter => "sequencing",
            _ => "wait",
        },
    }
}

impl CausalDag {
    /// Rebuilds the DAG offline from a recorded trace (e.g. a
    /// model-checking counterexample replay). The streaming observer in
    /// [`Telemetry`](crate::Telemetry) applies identical pairing rules.
    #[must_use]
    pub fn from_trace(entries: &[TraceEntry]) -> CausalDag {
        let mut state = CausalState::default();
        for e in entries {
            match (e.kind, &e.detail) {
                ("cause", &TraceDetail::Cause { id, cause, op }) => {
                    state.record_cause(e.actor, e.time, id, cause, op);
                }
                ("opt-conflict", &TraceDetail::Conflict { var, writer }) => {
                    state.record_conflict(e.actor, var, writer);
                }
                _ => state.note_record(e.actor, e.kind, e.time),
            }
        }
        state.dag
    }

    /// Number of actions in the forest.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no causal records were observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up one action by raw id.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<&CausalNode> {
        self.nodes.get(&id)
    }

    /// All nodes in id (allocation) order.
    pub fn iter(&self) -> impl Iterator<Item = &CausalNode> {
        self.nodes.values()
    }

    /// Ids of every rollback action, in allocation order.
    #[must_use]
    pub fn rollbacks(&self) -> Vec<u64> {
        self.nodes
            .values()
            .filter(|n| matches!(n.op, CauseOp::Rollback))
            .map(|n| n.id)
            .collect()
    }

    /// The cause→effect chain ending at `id`, root first. `None` when the
    /// id is unknown.
    #[must_use]
    pub fn chain(&self, id: u64) -> Option<Vec<&CausalNode>> {
        let mut chain = Vec::new();
        let mut cur = self.nodes.get(&id)?;
        loop {
            chain.push(cur);
            match self.nodes.get(&cur.cause) {
                Some(parent) => cur = parent,
                None => break,
            }
        }
        chain.reverse();
        Some(chain)
    }

    /// The critical path: the chain ending at the latest action in the
    /// forest (ties broken toward the highest id), split into per-edge
    /// time categories. `None` for an empty DAG.
    #[must_use]
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let last = self
            .nodes
            .values()
            .max_by_key(|n| (n.time, n.id))
            .map(|n| n.id)?;
        let chain = self.chain(last)?;
        let mut path = CriticalPath {
            ids: chain.iter().map(|n| n.id).collect(),
            start: chain.first()?.time,
            end: chain.last()?.time,
            flight_ns: 0,
            hold_ns: 0,
            sequencing_ns: 0,
            wait_ns: 0,
        };
        path.wait_ns += path.start.as_nanos();
        for pair in chain.windows(2) {
            let (parent, child) = (pair[0], pair[1]);
            let dt = child.time.saturating_since(parent.time).as_nanos();
            match edge_category(parent.op, child.op) {
                "flight" => path.flight_ns += dt,
                "hold" => path.hold_ns += dt,
                "sequencing" => path.sequencing_ns += dt,
                _ => path.wait_ns += dt,
            }
        }
        Some(path)
    }

    /// Renders the chain ending at `id` as text, one action per line —
    /// the `sesame explain` output. Long program-order prefixes are elided
    /// so the cross-node tail stays readable. `None` when the id is
    /// unknown.
    #[must_use]
    pub fn render_chain(&self, id: u64) -> Option<String> {
        let chain = self.chain(id)?;
        let len = chain.len();
        // Keep the root and the last 20 hops; elide the middle.
        let (head, tail_from) = if len > 24 { (2, len - 20) } else { (len, len) };
        let mut out = String::new();
        for (i, n) in chain.iter().enumerate() {
            if i >= head && i < tail_from {
                if i == head {
                    let _ = writeln!(
                        out,
                        "  └─ … {} intermediate events elided …",
                        tail_from - head
                    );
                }
                continue;
            }
            let arrow = if i == 0 { "  " } else { "  └─ " };
            let _ = write!(
                out,
                "{arrow}#{} {:<9} node {} @ {}ns",
                n.id,
                n.op.as_str(),
                n.actor,
                n.time.as_nanos(),
            );
            if !n.kind.is_empty() {
                let _ = write!(out, "  ({})", n.kind);
            }
            if let Some((var, writer)) = n.conflict {
                let _ = write!(out, "  conflict: v{var} written by node {writer}");
            }
            out.push('\n');
        }
        Some(out)
    }

    /// Deterministic JSON export (`sesame-causes/v1`): every node in id
    /// order with its parent edge, op, actor, time, paired kind, and (for
    /// rollbacks) the conflict blame.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"sesame-causes/v1\",\"nodes\":[");
        let mut first = true;
        for n in self.nodes.values() {
            if first {
                first = false;
            } else {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  {{\"id\":{},\"cause\":{},\"op\":\"{}\",\"node\":{},\"t_ns\":{},\"kind\":\"{}\"",
                n.id,
                n.cause,
                n.op,
                n.actor,
                n.time.as_nanos(),
                n.kind,
            );
            if let Some((var, writer)) = n.conflict {
                let _ = write!(out, ",\"conflict\":{{\"var\":{var},\"writer\":{writer}}}");
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Deterministic Graphviz DOT export: one node per action (rollbacks
    /// highlighted), one edge per cause→effect link.
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out =
            String::from("digraph causes {\n  rankdir=LR;\n  node [shape=box,fontsize=10];\n");
        for n in self.nodes.values() {
            let _ = write!(
                out,
                "  n{} [label=\"#{} {}\\nnode {} @ {}ns\"",
                n.id,
                n.id,
                n.op,
                n.actor,
                n.time.as_nanos(),
            );
            if matches!(n.op, CauseOp::Rollback) {
                out.push_str(",color=red");
            }
            out.push_str("];\n");
        }
        for n in self.nodes.values() {
            if n.cause != 0 && self.nodes.contains_key(&n.cause) {
                let _ = writeln!(out, "  n{} -> n{};", n.cause, n.id);
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Streaming builder state: the DAG plus the pairing bookkeeping the
/// observer needs (last canonical record per actor, last cause per actor
/// for conflict attachment, and the send-like causes that seed timeline
/// flow arrows).
#[derive(Debug, Clone, Default)]
pub(crate) struct CausalState {
    pub(crate) dag: CausalDag,
    /// Last non-`"cause"` record per actor: `(kind, time)`.
    last_record: BTreeMap<usize, (&'static str, SimTime)>,
    /// Last cause id recorded per actor (for `"opt-conflict"` attachment).
    last_cause: BTreeMap<usize, u64>,
    /// Send/multicast causes: `id -> (actor, time)`, for flow events.
    send_like: BTreeMap<u64, (usize, SimTime)>,
}

impl CausalState {
    /// Where (actor, time) the send-like cause `id` originated, if it was
    /// one — the source anchor for a timeline flow arrow.
    pub(crate) fn send_like_source(&self, id: u64) -> Option<(usize, SimTime)> {
        self.send_like.get(&id).copied()
    }

    /// Notes a canonical (non-cause) record for pairing.
    pub(crate) fn note_record(&mut self, actor: usize, kind: &'static str, t: SimTime) {
        self.last_record.insert(actor, (kind, t));
    }

    /// Inserts one causal node, pairing it with the immediately preceding
    /// canonical record on the same actor at the same time (if any).
    pub(crate) fn record_cause(
        &mut self,
        actor: usize,
        t: SimTime,
        id: u64,
        cause: u64,
        op: CauseOp,
    ) {
        let kind = match self.last_record.get(&actor) {
            Some(&(kind, rt)) if rt == t => kind,
            _ => "",
        };
        self.last_cause.insert(actor, id);
        if matches!(op, CauseOp::Send | CauseOp::Mcast) {
            self.send_like.insert(id, (actor, t));
        }
        self.dag.nodes.insert(
            id,
            CausalNode {
                id,
                cause,
                op,
                actor,
                time: t,
                kind,
                conflict: None,
            },
        );
    }

    /// Attaches rollback blame to the actor's most recent causal node.
    pub(crate) fn record_conflict(&mut self, actor: usize, var: u32, writer: u32) {
        if let Some(id) = self.last_cause.get(&actor) {
            if let Some(node) = self.dag.nodes.get_mut(id) {
                node.conflict = Some((var, writer));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cause(ns: u64, actor: usize, id: u64, parent: u64, op: CauseOp) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_nanos(ns),
            actor,
            kind: "cause",
            detail: TraceDetail::Cause {
                id,
                cause: parent,
                op,
            },
        }
    }

    fn canonical(ns: u64, actor: usize, kind: &'static str) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_nanos(ns),
            actor,
            kind,
            detail: TraceDetail::Var { var: 0 },
        }
    }

    /// A small cross-node story: node 1 writes (root-sequenced, multicast),
    /// node 2's apply interrupts its optimistic section and rolls back.
    fn sample() -> Vec<TraceEntry> {
        vec![
            canonical(0, 1, "acc-write"),
            cause(0, 1, 1, 0, CauseOp::Write),
            canonical(0, 1, "pkt-send"),
            cause(0, 1, 2, 1, CauseOp::Send),
            canonical(400, 0, "root-seq"),
            cause(400, 0, 3, 2, CauseOp::Seq),
            canonical(400, 0, "pkt-mcast"),
            cause(400, 0, 4, 3, CauseOp::Mcast),
            canonical(900, 2, "gwc-apply"),
            cause(900, 2, 5, 4, CauseOp::Apply),
            canonical(900, 2, "opt-rollback"),
            cause(900, 2, 6, 5, CauseOp::Rollback),
            TraceEntry {
                time: SimTime::from_nanos(900),
                actor: 2,
                kind: "opt-conflict",
                detail: TraceDetail::Conflict { var: 0, writer: 1 },
            },
        ]
    }

    #[test]
    fn chains_walk_back_to_the_remote_write() {
        let dag = CausalDag::from_trace(&sample());
        assert_eq!(dag.len(), 6);
        assert_eq!(dag.rollbacks(), vec![6]);
        let chain = dag.chain(6).expect("known id");
        let ops: Vec<CauseOp> = chain.iter().map(|n| n.op).collect();
        assert_eq!(
            ops,
            vec![
                CauseOp::Write,
                CauseOp::Send,
                CauseOp::Seq,
                CauseOp::Mcast,
                CauseOp::Apply,
                CauseOp::Rollback,
            ]
        );
        assert_eq!(chain[0].actor, 1);
        assert_eq!(chain[5].conflict, Some((0, 1)));
        assert!(dag.chain(99).is_none());
    }

    #[test]
    fn pairing_labels_nodes_with_the_preceding_canonical_kind() {
        let dag = CausalDag::from_trace(&sample());
        assert_eq!(dag.get(3).unwrap().kind, "root-seq");
        assert_eq!(dag.get(6).unwrap().kind, "opt-rollback");
    }

    #[test]
    fn critical_path_splits_time_by_edge_category() {
        let dag = CausalDag::from_trace(&sample());
        let path = dag.critical_path().expect("non-empty");
        assert_eq!(path.ids, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(path.total_ns(), 900);
        // write→send (wait 0), send→seq (flight 400), seq→mcast
        // (sequencing-free: parent seq, child mcast → wait 0), mcast→apply
        // (flight 500), apply→rollback (wait 0).
        assert_eq!(path.flight_ns, 900);
        assert_eq!(path.hold_ns + path.sequencing_ns + path.wait_ns, 0);
        assert_eq!(
            path.flight_ns + path.hold_ns + path.sequencing_ns + path.wait_ns,
            path.total_ns()
        );
    }

    #[test]
    fn exports_are_deterministic_and_carry_the_blame() {
        let dag = CausalDag::from_trace(&sample());
        let json = dag.to_json();
        assert!(json.contains("\"schema\":\"sesame-causes/v1\""));
        assert!(json.contains("\"conflict\":{\"var\":0,\"writer\":1}"));
        assert_eq!(json, CausalDag::from_trace(&sample()).to_json());
        let dot = dag.to_dot();
        assert!(dot.contains("n5 -> n6;"));
        assert!(dot.contains("color=red"));
    }

    #[test]
    fn render_chain_prints_every_hop_and_errors_on_unknown_ids() {
        let dag = CausalDag::from_trace(&sample());
        let text = dag.render_chain(6).expect("known id");
        assert!(text.contains("#1 write"));
        assert!(text.contains("conflict: v0 written by node 1"));
        assert!(dag.render_chain(12345).is_none());
    }
}
