//! The trace-stream observer: turns the canonical structured protocol
//! trace into registry metrics and timeline spans.
//!
//! [`Telemetry`] implements [`TraceObserver`], so it plugs into
//! `sesame_sim::TraceRecorder::set_observer` (via `sesame_dsm::run_observed`)
//! and sees every record online without the run retaining its trace in
//! memory. Records carry a typed [`TraceDetail`] payload, so the observer
//! destructures fields directly — no text parsing. Span construction is a
//! small set of per-`(node, lock)` state machines over the event stream:
//!
//! * **wait** — `mutex-enter` / `lock-acquire` → `ev-acquired` /
//!   `mutex-granted`;
//! * **hold** (the lock section) — grant → `ev-released`;
//! * **optimistic section** — `opt-enter` → `opt-rollback` (rolled back)
//!   or `mutex-complete` (committed), with an instant per rollback;
//! * **message in flight** — `pkt-send` / `pkt-mcast` async intervals;
//! * **root sequencing** — `root-seq` → last `gwc-apply` of the same
//!   `(group, seq)`, closed when the run finishes.

use std::collections::BTreeMap;

use sesame_sim::{SimTime, TraceDetail, TraceEntry, TraceObserver};

use crate::timeline::cat;
use crate::Telemetry;

/// Open wait/hold/optimistic sections, keyed by `(node, lock)`.
#[derive(Debug, Clone, Default)]
pub(crate) struct SpanState {
    pub(crate) wait_start: BTreeMap<(usize, u32), SimTime>,
    pub(crate) hold_start: BTreeMap<(usize, u32), SimTime>,
    pub(crate) opt_start: BTreeMap<(usize, u32), SimTime>,
    pub(crate) seq_pending: BTreeMap<(u32, u64), SeqSpan>,
}

/// One root-sequenced write awaiting its member applications.
#[derive(Debug, Clone)]
pub(crate) struct SeqSpan {
    pub(crate) root: usize,
    pub(crate) start: SimTime,
    pub(crate) last_apply: Option<SimTime>,
}

impl TraceObserver for Telemetry {
    fn on_record(&mut self, entry: &TraceEntry) {
        self.observe(entry);
    }
}

impl Telemetry {
    /// Processes one trace record (the [`TraceObserver`] entry point).
    ///
    /// A canonical kind paired with the wrong [`TraceDetail`] shape is
    /// ignored, exactly like an unknown kind.
    pub fn observe(&mut self, e: &TraceEntry) {
        let node = e.actor;
        let t = e.time;
        if let Some(series) = self.series.as_mut() {
            series.observe(e);
        }
        if self.timeline_enabled {
            self.timeline.touch_track(node);
        }
        match (e.kind, &e.detail) {
            ("cause", &TraceDetail::Cause { id, cause, op }) => {
                // Capture the flow source before inserting: a send's own
                // parent may be an earlier send on the same actor.
                let flow_src = self.causal.send_like_source(cause);
                self.causal.record_cause(node, t, id, cause, op);
                if self.timeline_enabled {
                    if let Some((src, sent)) = flow_src {
                        self.timeline.add_flow(
                            (src, sent),
                            (node, t),
                            cat::CAUSAL,
                            format!("cause #{id}"),
                            id,
                        );
                    }
                }
                return;
            }
            ("opt-conflict", &TraceDetail::Conflict { var, writer }) => {
                self.causal.record_conflict(node, var, writer);
                self.registry
                    .counter(&format!("blame/var/{var}/writer/{writer}"))
                    .incr();
            }
            _ => {}
        }
        self.causal.note_record(node, e.kind, t);
        match (e.kind, &e.detail) {
            ("mutex-enter" | "lock-acquire", &TraceDetail::Var { var: v }) => {
                self.state.wait_start.insert((node, v), t);
            }
            ("ev-acquired" | "mutex-granted", &TraceDetail::Var { var: v }) => {
                if let Some(start) = self.state.wait_start.remove(&(node, v)) {
                    self.registry
                        .histogram(&format!("node/{node}/lock/{v}/wait"))
                        .record(t.saturating_since(start));
                    if self.timeline_enabled {
                        self.timeline
                            .add_complete(node, cat::LOCK, format!("wait v{v}"), start, t);
                    }
                }
                self.state.hold_start.insert((node, v), t);
            }
            ("ev-released", &TraceDetail::Var { var: v }) => {
                if let Some(start) = self.state.hold_start.remove(&(node, v)) {
                    self.registry
                        .histogram(&format!("node/{node}/lock/{v}/hold"))
                        .record(t.saturating_since(start));
                    if self.timeline_enabled {
                        self.timeline
                            .add_complete(node, cat::LOCK, format!("hold v{v}"), start, t);
                    }
                }
            }
            ("mutex-regular", &TraceDetail::Var { var: v }) => {
                self.registry
                    .counter(&format!("node/{node}/lock/{v}/reg/attempts"))
                    .incr();
            }
            ("opt-enter", &TraceDetail::Var { var: v }) => {
                self.registry
                    .counter(&format!("node/{node}/lock/{v}/opt/attempts"))
                    .incr();
                self.state.opt_start.insert((node, v), t);
            }
            ("opt-rollback", &TraceDetail::Var { var: v }) => {
                self.registry
                    .counter(&format!("node/{node}/lock/{v}/opt/rollbacks"))
                    .incr();
                if self.timeline_enabled {
                    self.timeline
                        .add_instant(node, cat::OPTIMISM, format!("rollback v{v}"), t);
                    if let Some(start) = self.state.opt_start.remove(&(node, v)) {
                        self.timeline.add_complete(
                            node,
                            cat::OPTIMISM,
                            format!("optimistic v{v} (rolled back)"),
                            start,
                            t,
                        );
                    }
                } else {
                    self.state.opt_start.remove(&(node, v));
                }
            }
            (
                "mutex-complete",
                &TraceDetail::Complete {
                    var: v,
                    optimistic,
                    rollbacks,
                    overlapped,
                },
            ) => {
                self.registry
                    .counter(&format!("node/{node}/lock/{v}/completions"))
                    .incr();
                if optimistic {
                    if rollbacks == 0 {
                        self.registry
                            .counter(&format!("node/{node}/lock/{v}/opt/wins"))
                            .incr();
                    }
                    if overlapped {
                        self.registry
                            .counter(&format!("node/{node}/lock/{v}/opt/overlapped"))
                            .incr();
                    }
                    if let Some(start) = self.state.opt_start.remove(&(node, v)) {
                        if self.timeline_enabled {
                            self.timeline.add_complete(
                                node,
                                cat::OPTIMISM,
                                format!("optimistic v{v}"),
                                start,
                                t,
                            );
                        }
                    }
                }
            }
            ("root-queue", &TraceDetail::QueueDepth { var: v, depth }) => {
                self.registry
                    .time_weighted(&format!("node/{node}/lock/{v}/root-queue-depth"))
                    .set(t, f64::from(depth));
            }
            ("ec-queue", &TraceDetail::QueueDepth { var: v, depth }) => {
                self.registry
                    .time_weighted(&format!("node/{node}/lock/{v}/ec-queue-depth"))
                    .set(t, f64::from(depth));
            }
            ("root-seq", &TraceDetail::Seq { group: g, seq, .. }) => {
                self.registry
                    .counter(&format!("group/{g}/sequenced"))
                    .incr();
                self.state.seq_pending.insert(
                    (g, seq),
                    SeqSpan {
                        root: node,
                        start: t,
                        last_apply: None,
                    },
                );
            }
            ("root-filtered", &TraceDetail::Filtered { group: g, .. }) => {
                self.registry.counter(&format!("group/{g}/filtered")).incr();
            }
            ("gwc-apply", &TraceDetail::Apply { group: g, seq, .. }) => {
                self.registry
                    .counter(&format!("node/{node}/gwc/applies"))
                    .incr();
                if let Some(span) = self.state.seq_pending.get_mut(&(g, seq)) {
                    span.last_apply = Some(t);
                    let start = span.start;
                    self.registry
                        .histogram(&format!("group/{g}/seq-latency"))
                        .record(t.saturating_since(start));
                }
            }
            ("hw-block-drop", _) => {
                self.registry
                    .counter(&format!("node/{node}/gwc/hw-block-drops"))
                    .incr();
            }
            ("acc-read", _) => {
                self.registry
                    .counter(&format!("node/{node}/mem/reads"))
                    .incr();
            }
            ("acc-write", _) => {
                self.registry
                    .counter(&format!("node/{node}/mem/writes"))
                    .incr();
            }
            ("acc-write-local", _) => {
                self.registry
                    .counter(&format!("node/{node}/mem/local-writes"))
                    .incr();
            }
            (
                "pkt-send",
                &TraceDetail::Packet {
                    to,
                    bytes,
                    hops,
                    arrival_ns,
                    ..
                },
            ) => {
                self.registry
                    .counter(&format!("node/{node}/net/packets"))
                    .incr();
                self.registry
                    .counter(&format!("node/{node}/net/bytes"))
                    .add(u64::from(bytes));
                self.registry
                    .counter(&format!("node/{node}/net/hops"))
                    .add(u64::from(hops));
                let arrival = SimTime::from_nanos(arrival_ns);
                self.registry
                    .histogram(&format!("node/{node}/net/flight"))
                    .record(arrival.saturating_since(t));
                if self.timeline_enabled {
                    self.timeline.add_async(
                        node,
                        cat::NET,
                        format!("pkt {node}->{to}"),
                        t,
                        arrival,
                    );
                }
            }
            (
                "pkt-mcast",
                &TraceDetail::Multicast {
                    group: g,
                    bytes,
                    members,
                    last_ns,
                },
            ) => {
                self.registry
                    .counter(&format!("node/{node}/net/mcasts"))
                    .incr();
                self.registry
                    .counter(&format!("node/{node}/net/mcast-bytes"))
                    .add(u64::from(bytes) * u64::from(members));
                if self.timeline_enabled {
                    self.timeline.add_async(
                        node,
                        cat::NET,
                        format!("mcast g{g}"),
                        t,
                        SimTime::from_nanos(last_ns),
                    );
                }
            }
            ("ec-grant-arrived", _) => {
                self.registry
                    .counter(&format!("node/{node}/ec/grants"))
                    .incr();
            }
            ("ec-invalidated", _) => {
                self.registry
                    .counter(&format!("node/{node}/ec/invalidations"))
                    .incr();
            }
            ("ec-fetch-serve", _) => {
                self.registry
                    .counter(&format!("node/{node}/ec/fetch-serves"))
                    .incr();
            }
            ("ec-local-reacquire", _) => {
                self.registry
                    .counter(&format!("node/{node}/ec/local-reacquires"))
                    .incr();
            }
            _ => {}
        }
    }

    /// Closes cross-record state at the simulated end of the run: emits
    /// the root-sequencing async spans and records the end time used by
    /// [`Telemetry::snapshot`](crate::Telemetry::snapshot). Call once,
    /// after the run.
    ///
    /// Sections still open at end-of-run (a sequenced write no member had
    /// applied yet, a wait/hold/optimistic section that never closed) are
    /// emitted as spans ending at `end` with a `(truncated)` marker rather
    /// than dropped silently — a run cut short mid-protocol still shows
    /// where every node was stuck.
    pub fn finish(&mut self, end: SimTime) {
        self.end = end;
        if let Some(series) = self.series.as_mut() {
            series.finish(end);
        }
        let pending = std::mem::take(&mut self.state.seq_pending);
        let waits = std::mem::take(&mut self.state.wait_start);
        let holds = std::mem::take(&mut self.state.hold_start);
        let opts = std::mem::take(&mut self.state.opt_start);
        if !self.timeline_enabled {
            return;
        }
        for ((g, seq), span) in pending {
            match span.last_apply {
                Some(last) => self.timeline.add_async(
                    span.root,
                    cat::GWC,
                    format!("seq g{g}#{seq}"),
                    span.start,
                    last,
                ),
                None => self.timeline.add_async(
                    span.root,
                    cat::GWC,
                    format!("seq g{g}#{seq} (truncated)"),
                    span.start,
                    end,
                ),
            }
        }
        for ((node, v), start) in waits {
            self.timeline.add_complete(
                node,
                cat::LOCK,
                format!("wait v{v} (truncated)"),
                start,
                end,
            );
        }
        for ((node, v), start) in holds {
            self.timeline.add_complete(
                node,
                cat::LOCK,
                format!("hold v{v} (truncated)"),
                start,
                end,
            );
        }
        for ((node, v), start) in opts {
            self.timeline.add_complete(
                node,
                cat::OPTIMISM,
                format!("optimistic v{v} (truncated)"),
                start,
                end,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesame_sim::ApplyMode;

    fn entry(ns: u64, actor: usize, kind: &'static str, detail: TraceDetail) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_nanos(ns),
            actor,
            kind,
            detail,
        }
    }

    fn feed(t: &mut Telemetry, events: Vec<(u64, usize, &'static str, TraceDetail)>) {
        for (ns, actor, kind, detail) in events {
            t.observe(&entry(ns, actor, kind, detail));
        }
    }

    fn var(var: u32) -> TraceDetail {
        TraceDetail::Var { var }
    }

    fn complete(var: u32, optimistic: bool, rollbacks: u32, overlapped: bool) -> TraceDetail {
        TraceDetail::Complete {
            var,
            optimistic,
            rollbacks,
            overlapped,
        }
    }

    #[test]
    fn wait_and_hold_histograms_from_lock_events() {
        let mut t = Telemetry::new("t", 0).with_timeline(true);
        feed(
            &mut t,
            vec![
                (100, 1, "lock-acquire", var(0)),
                (400, 1, "ev-acquired", var(0)),
                (900, 1, "ev-released", var(0)),
            ],
        );
        t.finish(SimTime::from_nanos(1000));
        let snap = t.snapshot();
        match &snap.metrics["node/1/lock/0/wait"] {
            crate::SnapshotValue::Histogram { count, mean_ns, .. } => {
                assert_eq!((*count, *mean_ns), (1, 300));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &snap.metrics["node/1/lock/0/hold"] {
            crate::SnapshotValue::Histogram { mean_ns, .. } => assert_eq!(*mean_ns, 500),
            other => panic!("unexpected {other:?}"),
        }
        let trace = t.chrome_trace();
        assert!(trace.contains("wait v0"));
        assert!(trace.contains("hold v0"));
    }

    #[test]
    fn optimism_counters_wins_and_rollbacks() {
        let mut t = Telemetry::new("t", 0).with_timeline(true);
        // One clean optimistic completion, one rolled-back one.
        feed(
            &mut t,
            vec![
                (10, 2, "mutex-enter", var(0)),
                (11, 2, "opt-enter", var(0)),
                (50, 2, "mutex-granted", var(0)),
                (60, 2, "ev-released", var(0)),
                (60, 2, "mutex-complete", complete(0, true, 0, true)),
                (100, 2, "mutex-enter", var(0)),
                (101, 2, "opt-enter", var(0)),
                (150, 2, "opt-rollback", var(0)),
                (300, 2, "mutex-granted", var(0)),
                (400, 2, "ev-released", var(0)),
                (400, 2, "mutex-complete", complete(0, true, 1, false)),
            ],
        );
        t.finish(SimTime::from_nanos(500));
        let snap = t.snapshot();
        assert_eq!(snap.counter("node/2/lock/0/opt/attempts"), 2);
        assert_eq!(snap.counter("node/2/lock/0/opt/wins"), 1);
        assert_eq!(snap.counter("node/2/lock/0/opt/rollbacks"), 1);
        assert_eq!(snap.counter("node/2/lock/0/opt/overlapped"), 1);
        assert_eq!(snap.counter("node/2/lock/0/completions"), 2);
        let trace = t.chrome_trace();
        assert!(trace.contains("rollback v0"));
        assert!(trace.contains("optimistic v0 (rolled back)"));
    }

    #[test]
    fn sequencing_latency_and_async_span() {
        let mut t = Telemetry::new("t", 0).with_timeline(true);
        let seq = TraceDetail::Seq {
            group: 0,
            seq: 1,
            var: 3,
            val: 9,
            origin: 2,
        };
        let apply = TraceDetail::Apply {
            group: 0,
            seq: 1,
            var: 3,
            val: 9,
            origin: 2,
            mode: ApplyMode::Applied,
        };
        feed(
            &mut t,
            vec![
                (100, 1, "root-seq", seq),
                (300, 0, "gwc-apply", apply.clone()),
                (500, 2, "gwc-apply", apply),
            ],
        );
        t.finish(SimTime::from_nanos(600));
        let snap = t.snapshot();
        assert_eq!(snap.counter("group/0/sequenced"), 1);
        match &snap.metrics["group/0/seq-latency"] {
            crate::SnapshotValue::Histogram { count, max_ns, .. } => {
                assert_eq!((*count, *max_ns), (2, 400));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(t.chrome_trace().contains("seq g0#1"));
    }

    #[test]
    fn packet_events_accumulate_per_node() {
        let mut t = Telemetry::new("t", 0);
        let pkt = |to, bytes, hops, arrival_ns| TraceDetail::Packet {
            from: 0,
            to,
            bytes,
            hops,
            arrival_ns,
        };
        feed(
            &mut t,
            vec![
                (10, 0, "pkt-send", pkt(1, 32, 2, 300)),
                (20, 0, "pkt-send", pkt(2, 16, 1, 100)),
            ],
        );
        t.finish(SimTime::from_nanos(400));
        let snap = t.snapshot();
        assert_eq!(snap.counter("node/0/net/packets"), 2);
        assert_eq!(snap.counter("node/0/net/bytes"), 48);
        assert_eq!(snap.counter("node/0/net/hops"), 3);
    }

    #[test]
    fn dangling_spans_close_with_truncated_markers() {
        let mut t = Telemetry::new("t", 0).with_timeline(true);
        let seq = TraceDetail::Seq {
            group: 0,
            seq: 4,
            var: 1,
            val: 2,
            origin: 1,
        };
        feed(
            &mut t,
            vec![
                // A sequenced write nobody applied, an unanswered acquire,
                // a hold and an optimistic section never released.
                (100, 0, "root-seq", seq),
                (200, 1, "lock-acquire", var(0)),
                (250, 2, "ev-acquired", var(1)),
                (260, 2, "opt-enter", var(1)),
            ],
        );
        t.finish(SimTime::from_nanos(500));
        let trace = t.chrome_trace();
        assert!(trace.contains("seq g0#4 (truncated)"), "{trace}");
        assert!(trace.contains("wait v0 (truncated)"), "{trace}");
        assert!(trace.contains("hold v1 (truncated)"), "{trace}");
        assert!(trace.contains("optimistic v1 (truncated)"), "{trace}");
    }

    #[test]
    fn cause_records_build_the_dag_and_emit_flow_arrows() {
        use sesame_sim::CauseOp;
        let mut t = Telemetry::new("t", 0).with_timeline(true);
        let cause = |id, cause, op| TraceDetail::Cause { id, cause, op };
        feed(
            &mut t,
            vec![
                (10, 1, "pkt-send", TraceDetail::text("ignored-shape")),
                (10, 1, "cause", cause(1, 0, CauseOp::Send)),
                (300, 0, "cause", cause(2, 1, CauseOp::Apply)),
            ],
        );
        t.finish(SimTime::from_nanos(400));
        let dag = t.causes();
        assert_eq!(dag.len(), 2);
        assert_eq!(dag.get(1).unwrap().kind, "pkt-send");
        assert_eq!(dag.get(2).unwrap().cause, 1);
        let trace = t.chrome_trace();
        assert!(trace.contains("\"ph\":\"s\""), "{trace}");
        assert!(trace.contains("\"ph\":\"f\",\"bp\":\"e\""), "{trace}");
        // Cause records feed the DAG, not the metric registry.
        assert_eq!(t.snapshot().metrics.len(), 0);
    }

    #[test]
    fn conflicts_count_blame_and_annotate_the_rollback_node() {
        use sesame_sim::CauseOp;
        let mut t = Telemetry::new("t", 0);
        feed(
            &mut t,
            vec![
                (50, 2, "opt-rollback", var(0)),
                (
                    50,
                    2,
                    "cause",
                    TraceDetail::Cause {
                        id: 9,
                        cause: 0,
                        op: CauseOp::Rollback,
                    },
                ),
                (
                    50,
                    2,
                    "opt-conflict",
                    TraceDetail::Conflict { var: 0, writer: 1 },
                ),
            ],
        );
        t.finish(SimTime::from_nanos(60));
        assert_eq!(t.causes().get(9).unwrap().conflict, Some((0, 1)));
        let snap = t.snapshot();
        assert_eq!(snap.counter("blame/var/0/writer/1"), 1);
    }

    #[test]
    fn unknown_kinds_and_mismatched_details_are_ignored() {
        let mut t = Telemetry::new("t", 0);
        feed(
            &mut t,
            vec![
                // Unknown kind: never observed.
                (10, 0, "something-new", var(1)),
                // Canonical kinds with the wrong detail shape: ignored
                // rather than misread.
                (20, 0, "pkt-send", TraceDetail::text("garbage")),
                (30, 0, "ev-acquired", TraceDetail::text("no-v-here")),
                (40, 0, "mutex-complete", var(0)),
                (50, 0, "root-seq", var(0)),
            ],
        );
        t.finish(SimTime::from_nanos(60));
        assert_eq!(t.snapshot().metrics.len(), 0);
    }
}
