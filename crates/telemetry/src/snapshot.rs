//! Point-in-time export of a [`MetricRegistry`](crate::MetricRegistry).
//!
//! The JSON schema (`sesame-telemetry/v1`) is stable: bench trajectories and
//! CI smoke checks parse it back with [`Snapshot::from_json`]. Top level:
//!
//! ```json
//! {
//!   "schema": "sesame-telemetry/v1",
//!   "scenario": "contention",
//!   "seed": 42,
//!   "end_ns": 123456,
//!   "metrics": { "<key>": { "kind": "...", ... }, ... }
//! }
//! ```
//!
//! Per-kind metric members:
//! * `counter` — `value`
//! * `gauge` — `value`
//! * `histogram` — `count`, `mean_ns`, `p50_ns`, `p90_ns`, `p99_ns`, `max_ns`
//! * `meanvar` — `count`, `mean`, `std_dev`, `min`, `max`
//! * `timeweighted` — `average`, `current`

use std::collections::BTreeMap;

use sesame_sim::SimTime;

use crate::json::{self, fmt_num, Json};
use crate::registry::{Metric, MetricRegistry};

/// Schema identifier written into (and required from) every snapshot.
pub const SCHEMA: &str = "sesame-telemetry/v1";

/// Exported value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary (nanosecond durations).
    Histogram {
        /// Number of samples.
        count: u64,
        /// Mean sample.
        mean_ns: u64,
        /// Approximate median.
        p50_ns: u64,
        /// Approximate 90th percentile.
        p90_ns: u64,
        /// Approximate 99th percentile.
        p99_ns: u64,
        /// Largest sample.
        max_ns: u64,
    },
    /// Mean/variance summary of unitless samples.
    MeanVar {
        /// Number of samples.
        count: u64,
        /// Sample mean.
        mean: f64,
        /// Population standard deviation.
        std_dev: f64,
        /// Smallest sample (0 when empty).
        min: f64,
        /// Largest sample (0 when empty).
        max: f64,
    },
    /// Time-weighted signal summary.
    TimeWeighted {
        /// Average over the run.
        average: f64,
        /// Final value.
        current: f64,
    },
}

/// A parsed or freshly taken metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Scenario label (e.g. `"contention"`).
    pub scenario: String,
    /// Workload seed the run used.
    pub seed: u64,
    /// Simulated end time of the run, in nanoseconds.
    pub end_ns: u64,
    /// Metric values, key-sorted.
    pub metrics: BTreeMap<String, SnapshotValue>,
}

impl MetricRegistry {
    /// Takes a snapshot of every registered metric at simulated time `end`.
    pub fn snapshot(&self, scenario: &str, seed: u64, end: SimTime) -> Snapshot {
        let mut metrics = BTreeMap::new();
        for (key, metric) in self.iter() {
            let value = match metric {
                Metric::Counter(c) => SnapshotValue::Counter(c.value()),
                Metric::Gauge(g) => SnapshotValue::Gauge(*g),
                Metric::Histogram(h) => SnapshotValue::Histogram {
                    count: h.count(),
                    mean_ns: h.mean().as_nanos(),
                    p50_ns: h.quantile(0.5).as_nanos(),
                    p90_ns: h.quantile(0.9).as_nanos(),
                    p99_ns: h.quantile(0.99).as_nanos(),
                    max_ns: h.max().as_nanos(),
                },
                Metric::MeanVar(m) => SnapshotValue::MeanVar {
                    count: m.count(),
                    mean: m.mean(),
                    std_dev: m.std_dev(),
                    min: m.min().unwrap_or(0.0),
                    max: m.max().unwrap_or(0.0),
                },
                Metric::TimeWeighted(tw) => SnapshotValue::TimeWeighted {
                    average: tw.average(end),
                    current: tw.current(),
                },
            };
            metrics.insert(key.to_string(), value);
        }
        Snapshot {
            scenario: scenario.to_string(),
            seed,
            end_ns: end.as_nanos(),
            metrics,
        }
    }
}

impl Snapshot {
    /// Renders the snapshot as schema-`v1` JSON text (one trailing newline).
    pub fn to_json(&self) -> String {
        let mut metrics = Vec::with_capacity(self.metrics.len());
        for (key, value) in &self.metrics {
            let members = match value {
                SnapshotValue::Counter(v) => vec![
                    ("kind".into(), Json::Str("counter".into())),
                    ("value".into(), Json::Num(*v as f64)),
                ],
                SnapshotValue::Gauge(v) => vec![
                    ("kind".into(), Json::Str("gauge".into())),
                    ("value".into(), Json::Num(*v)),
                ],
                SnapshotValue::Histogram {
                    count,
                    mean_ns,
                    p50_ns,
                    p90_ns,
                    p99_ns,
                    max_ns,
                } => vec![
                    ("kind".into(), Json::Str("histogram".into())),
                    ("count".into(), Json::Num(*count as f64)),
                    ("mean_ns".into(), Json::Num(*mean_ns as f64)),
                    ("p50_ns".into(), Json::Num(*p50_ns as f64)),
                    ("p90_ns".into(), Json::Num(*p90_ns as f64)),
                    ("p99_ns".into(), Json::Num(*p99_ns as f64)),
                    ("max_ns".into(), Json::Num(*max_ns as f64)),
                ],
                SnapshotValue::MeanVar {
                    count,
                    mean,
                    std_dev,
                    min,
                    max,
                } => vec![
                    ("kind".into(), Json::Str("meanvar".into())),
                    ("count".into(), Json::Num(*count as f64)),
                    ("mean".into(), Json::Num(*mean)),
                    ("std_dev".into(), Json::Num(*std_dev)),
                    ("min".into(), Json::Num(*min)),
                    ("max".into(), Json::Num(*max)),
                ],
                SnapshotValue::TimeWeighted { average, current } => vec![
                    ("kind".into(), Json::Str("timeweighted".into())),
                    ("average".into(), Json::Num(*average)),
                    ("current".into(), Json::Num(*current)),
                ],
            };
            metrics.push((key.clone(), Json::Obj(members)));
        }
        let root = Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("end_ns".into(), Json::Num(self.end_ns as f64)),
            ("metrics".into(), Json::Obj(metrics)),
        ]);
        let mut text = root.render();
        text.push('\n');
        text
    }

    /// Renders the snapshot as CSV rows `key,kind,field,value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("key,kind,field,value\n");
        let mut row = |key: &str, kind: &str, field: &str, value: String| {
            out.push_str(key);
            out.push(',');
            out.push_str(kind);
            out.push(',');
            out.push_str(field);
            out.push(',');
            out.push_str(&value);
            out.push('\n');
        };
        for (key, value) in &self.metrics {
            match value {
                SnapshotValue::Counter(v) => row(key, "counter", "value", v.to_string()),
                SnapshotValue::Gauge(v) => row(key, "gauge", "value", fmt_num(*v)),
                SnapshotValue::Histogram {
                    count,
                    mean_ns,
                    p50_ns,
                    p90_ns,
                    p99_ns,
                    max_ns,
                } => {
                    row(key, "histogram", "count", count.to_string());
                    row(key, "histogram", "mean_ns", mean_ns.to_string());
                    row(key, "histogram", "p50_ns", p50_ns.to_string());
                    row(key, "histogram", "p90_ns", p90_ns.to_string());
                    row(key, "histogram", "p99_ns", p99_ns.to_string());
                    row(key, "histogram", "max_ns", max_ns.to_string());
                }
                SnapshotValue::MeanVar {
                    count,
                    mean,
                    std_dev,
                    min,
                    max,
                } => {
                    row(key, "meanvar", "count", count.to_string());
                    row(key, "meanvar", "mean", fmt_num(*mean));
                    row(key, "meanvar", "std_dev", fmt_num(*std_dev));
                    row(key, "meanvar", "min", fmt_num(*min));
                    row(key, "meanvar", "max", fmt_num(*max));
                }
                SnapshotValue::TimeWeighted { average, current } => {
                    row(key, "timeweighted", "average", fmt_num(*average));
                    row(key, "timeweighted", "current", fmt_num(*current));
                }
            }
        }
        out
    }

    /// Parses and validates schema-`v1` JSON text back into a snapshot.
    ///
    /// Rejects a wrong/missing schema tag, missing top-level members, and
    /// metric objects whose members don't match their declared kind — this
    /// doubles as the snapshot validator used by CI.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let root = json::parse(text)?;
        let schema = root
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing 'schema'")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (want '{SCHEMA}')"));
        }
        let scenario = root
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("missing 'scenario'")?
            .to_string();
        let seed = root
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("missing 'seed'")?;
        let end_ns = root
            .get("end_ns")
            .and_then(Json::as_u64)
            .ok_or("missing 'end_ns'")?;
        let members = root
            .get("metrics")
            .and_then(Json::members)
            .ok_or("missing 'metrics' object")?;
        let mut metrics = BTreeMap::new();
        for (key, obj) in members {
            let kind = obj
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("metric '{key}': missing 'kind'"))?;
            let u64_of = |field: &str| {
                obj.get(field)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("metric '{key}': missing {kind} field '{field}'"))
            };
            let f64_of = |field: &str| {
                obj.get(field)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("metric '{key}': missing {kind} field '{field}'"))
            };
            let value = match kind {
                "counter" => SnapshotValue::Counter(u64_of("value")?),
                "gauge" => SnapshotValue::Gauge(f64_of("value")?),
                "histogram" => SnapshotValue::Histogram {
                    count: u64_of("count")?,
                    mean_ns: u64_of("mean_ns")?,
                    p50_ns: u64_of("p50_ns")?,
                    p90_ns: u64_of("p90_ns")?,
                    p99_ns: u64_of("p99_ns")?,
                    max_ns: u64_of("max_ns")?,
                },
                "meanvar" => SnapshotValue::MeanVar {
                    count: u64_of("count")?,
                    mean: f64_of("mean")?,
                    std_dev: f64_of("std_dev")?,
                    min: f64_of("min")?,
                    max: f64_of("max")?,
                },
                "timeweighted" => SnapshotValue::TimeWeighted {
                    average: f64_of("average")?,
                    current: f64_of("current")?,
                },
                other => return Err(format!("metric '{key}': unknown kind '{other}'")),
            };
            metrics.insert(key.clone(), value);
        }
        Ok(Snapshot {
            scenario,
            seed,
            end_ns,
            metrics,
        })
    }

    /// The counter value at `key`, or 0 when absent or not a counter.
    pub fn counter(&self, key: &str) -> u64 {
        match self.metrics.get(key) {
            Some(SnapshotValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Keys matching a `prefix/…/suffix` pattern, e.g.
    /// (`"node"`, `"opt/attempts"`).
    pub fn keys_matching<'a>(
        &'a self,
        prefix: &'a str,
        suffix: &'a str,
    ) -> impl Iterator<Item = &'a str> {
        self.metrics
            .keys()
            .map(String::as_str)
            .filter(move |k| k.starts_with(prefix) && k.ends_with(suffix))
    }

    /// Sums counters whose keys start with `prefix` and end with `suffix`.
    pub fn sum_counters(&self, prefix: &str, suffix: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.starts_with(prefix) && k.ends_with(suffix))
            .map(|(_, v)| match v {
                SnapshotValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesame_sim::SimDur;

    fn sample_registry() -> MetricRegistry {
        let mut r = MetricRegistry::new();
        r.counter("node/0/lock/0/opt/attempts").add(4);
        r.counter("node/1/lock/0/opt/attempts").add(6);
        *r.gauge("node/0/cpu/efficiency") = 0.875;
        r.histogram("node/0/lock/0/wait")
            .record(SimDur::from_nanos(300));
        r.mean_var("x").record(2.0);
        r.time_weighted("q").set(SimTime::from_nanos(50), 1.0);
        r
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample_registry().snapshot("contention", 42, SimTime::from_nanos(100));
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn validation_rejects_bad_schema_and_shape() {
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json(r#"{"schema":"other/v9"}"#).is_err());
        let missing_field = format!(
            r#"{{"schema":"{SCHEMA}","scenario":"s","seed":1,"end_ns":2,"metrics":{{"k":{{"kind":"histogram","count":1}}}}}}"#
        );
        let err = Snapshot::from_json(&missing_field).unwrap_err();
        assert!(err.contains("mean_ns"), "err: {err}");
    }

    #[test]
    fn counter_helpers_aggregate() {
        let snap = sample_registry().snapshot("s", 1, SimTime::ZERO);
        assert_eq!(snap.counter("node/0/lock/0/opt/attempts"), 4);
        assert_eq!(snap.sum_counters("node/", "opt/attempts"), 10);
        assert_eq!(snap.keys_matching("node/", "opt/attempts").count(), 2);
    }

    #[test]
    fn csv_lists_every_field() {
        let snap = sample_registry().snapshot("s", 1, SimTime::from_nanos(100));
        let csv = snap.to_csv();
        assert!(csv.starts_with("key,kind,field,value\n"));
        assert!(csv.contains("node/0/lock/0/wait,histogram,p99_ns,"));
        assert!(csv.contains("node/0/cpu/efficiency,gauge,value,0.875\n"));
        assert!(csv.contains("q,timeweighted,average,"));
    }
}
