//! Simulated-time span timeline with Chrome trace-event export.
//!
//! Spans and instants are collected in emission order (simulation-time
//! order for begins) and exported as Chrome trace-event JSON — the format
//! both `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) open
//! directly. Each node gets its own track (`tid`); durations use complete
//! (`"X"`) events, rollbacks and other point events use instants (`"i"`),
//! and cross-node intervals (message in flight, root sequencing) use async
//! begin/end (`"b"`/`"e"`) pairs.
//!
//! Timestamps are simulated nanoseconds rendered as microseconds with
//! fixed three-digit precision, so exports are byte-identical for
//! identical runs.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use sesame_sim::{SimDur, SimTime};

/// Span/instant category tags used by the built-in instrumentation.
pub mod cat {
    /// Lock wait + hold sections.
    pub const LOCK: &str = "lock";
    /// Optimistic sections and rollbacks.
    pub const OPTIMISM: &str = "optimism";
    /// Message-in-flight intervals.
    pub const NET: &str = "net";
    /// Root write-sequencing intervals.
    pub const GWC: &str = "gwc";
    /// Cross-node cause→effect flow arrows.
    pub const CAUSAL: &str = "causal";
}

#[derive(Debug, Clone)]
enum Ev {
    Complete {
        tid: usize,
        cat: &'static str,
        name: String,
        start: SimTime,
        dur: SimDur,
    },
    Instant {
        tid: usize,
        cat: &'static str,
        name: String,
        ts: SimTime,
    },
    Async {
        tid: usize,
        cat: &'static str,
        name: String,
        id: u64,
        start: SimTime,
        end: SimTime,
    },
    Flow {
        src_tid: usize,
        dst_tid: usize,
        cat: &'static str,
        name: String,
        id: u64,
        start: SimTime,
        end: SimTime,
    },
}

/// An ordered collection of timeline events.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    events: Vec<Ev>,
    tracks: BTreeSet<usize>,
    next_async_id: u64,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures node `tid` gets a named track even if it emits no spans.
    pub fn touch_track(&mut self, tid: usize) {
        self.tracks.insert(tid);
    }

    /// Adds a duration span `[start, end]` on node `tid`'s track.
    pub fn add_complete(
        &mut self,
        tid: usize,
        cat: &'static str,
        name: String,
        start: SimTime,
        end: SimTime,
    ) {
        self.tracks.insert(tid);
        self.events.push(Ev::Complete {
            tid,
            cat,
            name,
            start,
            dur: end.saturating_since(start),
        });
    }

    /// Adds a zero-duration instant on node `tid`'s track.
    pub fn add_instant(&mut self, tid: usize, cat: &'static str, name: String, ts: SimTime) {
        self.tracks.insert(tid);
        self.events.push(Ev::Instant { tid, cat, name, ts });
    }

    /// Adds an async interval (rendered as its own arrow/track in viewers),
    /// anchored to node `tid`.
    pub fn add_async(
        &mut self,
        tid: usize,
        cat: &'static str,
        name: String,
        start: SimTime,
        end: SimTime,
    ) {
        self.tracks.insert(tid);
        let id = self.next_async_id;
        self.next_async_id += 1;
        self.events.push(Ev::Async {
            tid,
            cat,
            name,
            id,
            start,
            end,
        });
    }

    /// Adds a cross-track flow arrow from `src = (tid, time)` to
    /// `dst = (tid, time)` — rendered by Chrome/Perfetto as an arrow
    /// between the two tracks. `id` must be unique per arrow (the causal
    /// layer uses the effect's causal id).
    pub fn add_flow(
        &mut self,
        src: (usize, SimTime),
        dst: (usize, SimTime),
        cat: &'static str,
        name: String,
        id: u64,
    ) {
        let (src_tid, start) = src;
        let (dst_tid, end) = dst;
        self.tracks.insert(src_tid);
        self.tracks.insert(dst_tid);
        self.events.push(Ev::Flow {
            src_tid,
            dst_tid,
            cat,
            name,
            id,
            start,
            end,
        });
    }

    /// Number of collected events (async intervals count once).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the timeline as Chrome trace-event JSON (one trailing
    /// newline). All events share `pid` 0; `tid` is the node id, with a
    /// thread-name metadata record per track.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let sep = |out: &mut String, first: &mut bool| {
            if *first {
                *first = false;
            } else {
                out.push(',');
            }
            out.push_str("\n  ");
        };
        for &tid in &self.tracks {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"node {tid}\"}}}}"
            );
        }
        for ev in &self.events {
            match ev {
                Ev::Complete {
                    tid,
                    cat,
                    name,
                    start,
                    dur,
                } => {
                    sep(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                         \"cat\":\"{cat}\",\"name\":\"{}\"}}",
                        us(start.as_nanos()),
                        us(dur.as_nanos()),
                        escape(name),
                    );
                }
                Ev::Instant { tid, cat, name, ts } => {
                    sep(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
                         \"cat\":\"{cat}\",\"name\":\"{}\"}}",
                        us(ts.as_nanos()),
                        escape(name),
                    );
                }
                Ev::Async {
                    tid,
                    cat,
                    name,
                    id,
                    start,
                    end,
                } => {
                    let name = escape(name);
                    sep(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"ph\":\"b\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"id\":\"{id:#x}\",\
                         \"cat\":\"{cat}\",\"name\":\"{name}\"}}",
                        us(start.as_nanos()),
                    );
                    sep(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"ph\":\"e\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"id\":\"{id:#x}\",\
                         \"cat\":\"{cat}\",\"name\":\"{name}\"}}",
                        us(end.as_nanos()),
                    );
                }
                Ev::Flow {
                    src_tid,
                    dst_tid,
                    cat,
                    name,
                    id,
                    start,
                    end,
                } => {
                    let name = escape(name);
                    sep(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"ph\":\"s\",\"pid\":0,\"tid\":{src_tid},\"ts\":{},\"id\":\"{id:#x}\",\
                         \"cat\":\"{cat}\",\"name\":\"{name}\"}}",
                        us(start.as_nanos()),
                    );
                    sep(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{dst_tid},\"ts\":{},\
                         \"id\":\"{id:#x}\",\"cat\":\"{cat}\",\"name\":\"{name}\"}}",
                        us(end.as_nanos()),
                    );
                }
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

/// Nanoseconds → microseconds with fixed 3-digit precision (deterministic).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let mut tl = Timeline::new();
        tl.add_complete(0, cat::LOCK, "hold v0".into(), t(100), t(1600));
        tl.add_instant(1, cat::OPTIMISM, "rollback v0".into(), t(900));
        tl.add_async(0, cat::NET, "pkt 0->1".into(), t(100), t(400));
        let text = tl.to_chrome_trace();
        let root = json::parse(&text).expect("valid JSON");
        let events = root.get("traceEvents").unwrap().elements().unwrap();
        // 2 thread-name metadata + X + i + b + e.
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, vec!["M", "M", "X", "i", "b", "e"]);
    }

    #[test]
    fn timestamps_are_microseconds_with_ns_precision() {
        let mut tl = Timeline::new();
        tl.add_complete(2, cat::LOCK, "wait".into(), t(1500), t(4250));
        let text = tl.to_chrome_trace();
        assert!(text.contains("\"ts\":1.500"), "{text}");
        assert!(text.contains("\"dur\":2.750"), "{text}");
    }

    #[test]
    fn async_ids_are_unique_and_paired() {
        let mut tl = Timeline::new();
        tl.add_async(0, cat::GWC, "seq".into(), t(1), t(2));
        tl.add_async(0, cat::GWC, "seq".into(), t(3), t(4));
        let text = tl.to_chrome_trace();
        assert_eq!(text.matches("\"id\":\"0x0\"").count(), 2);
        assert_eq!(text.matches("\"id\":\"0x1\"").count(), 2);
    }

    #[test]
    fn flow_arrows_emit_paired_start_and_finish_phases() {
        let mut tl = Timeline::new();
        tl.add_flow((0, t(100)), (2, t(400)), cat::CAUSAL, "cause #7".into(), 7);
        let text = tl.to_chrome_trace();
        let root = json::parse(&text).expect("valid JSON");
        let events = root.get("traceEvents").unwrap().elements().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        // 2 thread-name metadata + s + f.
        assert_eq!(phases, vec!["M", "M", "s", "f"]);
        assert!(text.contains("\"ph\":\"f\",\"bp\":\"e\""));
        assert_eq!(text.matches("\"id\":\"0x7\"").count(), 2);
    }

    #[test]
    fn touched_tracks_appear_without_events() {
        let mut tl = Timeline::new();
        tl.touch_track(5);
        assert!(tl.is_empty());
        assert!(tl.to_chrome_trace().contains("node 5"));
    }
}
