//! End-to-end model-checking runs: exhaustive clean exploration, planted
//! mutants caught within budget, and counterexample replay round trips.

use sesame_check::{
    check, parse_replay, replay, to_replay_string, CanonicalConfig, CheckOptions, GwcMutation,
    LinkMode, MutexMutation,
};

fn two_cpu() -> CanonicalConfig {
    CanonicalConfig {
        contenders: 2,
        rounds: 1,
        ..CanonicalConfig::default()
    }
}

#[test]
fn clean_two_cpu_exploration_is_complete_and_violation_free() {
    let report = check(two_cpu(), CheckOptions::default());
    assert!(
        report.counterexample.is_none(),
        "clean protocol violated: {:#?}",
        report.counterexample.map(|cx| cx.violations)
    );
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(
        report.schedules > 1,
        "expected real branching, got {report:?}"
    );
}

#[test]
fn state_hashing_prunes_and_unhashed_search_agrees_within_budget() {
    // Hashing (the default) makes the clean 2-CPU space exhaustible;
    // without it the same space exceeds any practical budget, but a
    // bounded unhashed search must still find nothing and must honestly
    // report its incompleteness.
    let hashed = check(two_cpu(), CheckOptions::default());
    assert!(
        hashed.counterexample.is_none() && hashed.complete,
        "{hashed:?}"
    );
    assert!(
        hashed.pruned > 0,
        "state hashing never folded a revisit: {hashed:?}"
    );
    let unhashed = check(
        two_cpu(),
        CheckOptions {
            hash_states: false,
            work_max: 10_000,
            ..CheckOptions::default()
        },
    );
    assert!(
        unhashed.counterexample.is_none(),
        "unhashed search disagreed: {:#?}",
        unhashed.counterexample.map(|cx| cx.violations)
    );
    assert!(!unhashed.complete, "{unhashed:?}");
    assert_eq!(unhashed.pruned, 0, "{unhashed:?}");
}

#[test]
fn clean_protocol_tolerates_root_fanout_reordering() {
    // The member reorder/NACK machinery must absorb arbitrary reordering
    // of the root's sequenced-write fan-out. Reordering triggers NACKs
    // and resends, which can themselves reorder, so this space is
    // unbounded — a bounded search that finds no violation is the
    // strongest available statement.
    let report = check(
        two_cpu(),
        CheckOptions {
            links: LinkMode::RelaxFromRoots,
            work_max: 10_000,
            depth_max: 120,
            ..CheckOptions::default()
        },
    );
    assert!(
        report.counterexample.is_none(),
        "reorder machinery failed: {:#?}",
        report.counterexample.map(|cx| cx.violations)
    );
    assert!(
        report.schedules > 0,
        "no schedule ran to completion: {report:?}"
    );
}

#[test]
fn stale_grant_reuse_mutant_is_caught() {
    let cfg = CanonicalConfig {
        gwc_mutation: GwcMutation::StaleGrantReuse,
        ..two_cpu()
    };
    let report = check(cfg, CheckOptions::default());
    let cx = report
        .counterexample
        .expect("the double grant must be found");
    assert!(
        cx.violations
            .iter()
            .any(|v| v.message.contains("while node") && v.message.contains("still holds")),
        "unexpected diagnosis: {:#?}",
        cx.violations
    );
}

#[test]
fn seq_gap_mutant_is_caught_under_fanout_reordering() {
    // Applying over a sequence gap requires an out-of-order fan-out
    // delivery, which only the relaxed root links make reachable.
    let cfg = CanonicalConfig {
        gwc_mutation: GwcMutation::SeqGap,
        ..two_cpu()
    };
    let report = check(
        cfg,
        CheckOptions {
            links: LinkMode::RelaxFromRoots,
            ..CheckOptions::default()
        },
    );
    let cx = report
        .counterexample
        .expect("the out-of-order apply must be found");
    assert!(
        cx.violations
            .iter()
            .any(|v| v.message.contains("out of order")),
        "unexpected diagnosis: {:#?}",
        cx.violations
    );
}

#[test]
fn drop_rollback_mutant_is_caught() {
    let cfg = CanonicalConfig {
        mutex_mutation: MutexMutation::DropRollback,
        ..two_cpu()
    };
    let report = check(cfg, CheckOptions::default());
    let cx = report
        .counterexample
        .expect("the dropped rollback must be found");
    assert!(
        cx.violations.iter().any(|v| {
            v.message.contains("survived the discarded section")
                || v.message.contains("did not restore")
                || v.message.contains("increments were lost")
        }),
        "unexpected diagnosis: {:#?}",
        cx.violations
    );
}

#[test]
fn counterexample_replays_deterministically() {
    let cfg = CanonicalConfig {
        gwc_mutation: GwcMutation::StaleGrantReuse,
        ..two_cpu()
    };
    let report = check(cfg, CheckOptions::default());
    let cx = report.counterexample.expect("counterexample");

    // Serialize, parse back, re-execute: the offline checkers must
    // rediscover a violation on the replayed trace.
    let file = to_replay_string(&cx);
    let (parsed_cfg, choices) = parse_replay(&file).expect("well-formed replay file");
    assert_eq!(parsed_cfg, cfg);
    assert_eq!(choices, cx.choices);
    let outcome = replay(parsed_cfg, &choices).expect("schedule applies");
    assert!(
        !outcome.violations.is_empty(),
        "replay lost the violation: {outcome:?}"
    );
}

#[test]
fn schedule_budget_reports_incompleteness() {
    let report = check(
        two_cpu(),
        CheckOptions {
            schedules_max: 2,
            ..CheckOptions::default()
        },
    );
    assert!(!report.complete);
    assert!(report.schedules <= 2);
    assert!(report.counterexample.is_none());
}

#[test]
fn depth_budget_reports_incompleteness() {
    let report = check(
        two_cpu(),
        CheckOptions {
            depth_max: 5,
            ..CheckOptions::default()
        },
    );
    assert!(!report.complete);
    assert!(report.truncated > 0);
    assert!(report.counterexample.is_none());
}
