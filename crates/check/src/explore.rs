//! The sleep-set DFS schedule explorer.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::hash::{Hash, Hasher};
use std::ops::ControlFlow;
use std::rc::Rc;

use sesame_core::builder::ModelInstance;
use sesame_dsm::{independent, DsmEvent, GroupTable, Machine, Packet};
use sesame_net::{ContentionModel, NodeId};
use sesame_sim::{ActorId, PendingEvent, SimTime, Simulation, TraceEntry};
use sesame_verify::{CheckKind, Verifier, Violation};
use sesame_workloads::canonical::{build_canonical, CanonicalConfig, COUNTER};

/// The simulator message type of a DSM machine run.
type Msg = (NodeId, DsmEvent);

/// How far beyond the fabric's per-path FIFO guarantee the explorer may
/// reorder packet deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkMode {
    /// Packets on the same `(from, to)` link deliver in send order — the
    /// discipline the real fabric guarantees. Violations found in this
    /// mode are reachable in the timed model.
    #[default]
    Fifo,
    /// Additionally reorder packets on links *out of group roots*
    /// (sequenced-write fan-out). The member interfaces' reorder buffer
    /// and NACK machinery exist precisely to tolerate this, so the clean
    /// protocol must still pass — and mutants of that machinery (e.g.
    /// [`sesame_dsm::GwcMutation::SeqGap`]) become reachable.
    RelaxFromRoots,
    /// Reorder every link. The protocol *assumes* member-to-root FIFO
    /// (a release must not overtake the data writes before it), so clean
    /// runs can legitimately fail here; stress mode only.
    Relax,
}

/// Budgets and reduction switches for one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOptions {
    /// Maximum schedule length; longer executions are cut and counted as
    /// truncated (the exploration is then not complete).
    pub depth_max: usize,
    /// Maximum number of complete executions to run.
    pub schedules_max: u64,
    /// Maximum total tree leaves of any kind — completed schedules,
    /// truncations, sleep-blocked states, and hash prunes all count.
    /// This bounds wall-clock time even on configurations whose schedule
    /// space is dominated by abandoned branches (e.g. relaxed links),
    /// which the schedule budget alone never charges for.
    pub work_max: u64,
    /// Fold states already fully explored, keyed by machine digest plus
    /// pending-event set (on by default). Sound for the protocol
    /// invariants and the final-state oracle; may fold histories the
    /// real-time linearizability check would distinguish — switch it off
    /// when that check must be exhaustive.
    pub hash_states: bool,
    /// Packet-delivery discipline.
    pub links: LinkMode,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            depth_max: 500,
            schedules_max: 50_000,
            work_max: 500_000,
            hash_states: true,
            links: LinkMode::Fifo,
        }
    }
}

/// The outcome of one exploration.
#[derive(Debug)]
pub struct CheckReport {
    /// Complete executions explored.
    pub schedules: u64,
    /// Whether the whole schedule space was covered: no budget tripped
    /// and no counterexample cut the search short.
    pub complete: bool,
    /// Executions cut by the depth budget.
    pub truncated: u64,
    /// States whose every enabled event was in the sleep set (their
    /// behaviors are covered by sibling subtrees).
    pub sleep_blocked: u64,
    /// States skipped because an identical state was already explored
    /// (only with [`CheckOptions::hash_states`]).
    pub pruned: u64,
    /// Longest schedule seen.
    pub max_depth: usize,
    /// The violating schedule, if one was found.
    pub counterexample: Option<Counterexample>,
}

/// A violating schedule with everything needed to rerun and diagnose it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The workload the schedule applies to.
    pub config: CanonicalConfig,
    /// The chosen queue sequence numbers, in order.
    pub choices: Vec<u64>,
    /// What the online checkers reported.
    pub violations: Vec<Violation>,
    /// The full trace of the violating execution.
    pub trace: Vec<TraceEntry>,
}

/// One execution in flight: the simulator plus its online checkers.
struct Exec {
    sim: Simulation<Machine<ModelInstance>>,
    verifier: Rc<RefCell<Verifier>>,
}

impl Exec {
    fn start(cfg: &CanonicalConfig) -> Exec {
        let machine = build_canonical(*cfg);
        let n = machine.node_count();
        let mut sim = Simulation::new(vec![machine], 1);
        sim.set_tracing(true);
        let verifier = Rc::new(RefCell::new(Verifier::with_counter_spec(COUNTER.get())));
        sim.set_trace_observer(verifier.clone());
        for i in 0..n {
            sim.schedule(
                SimTime::ZERO,
                ActorId::new(0),
                (NodeId::new(i as u32), DsmEvent::Start),
            );
        }
        Exec { sim, verifier }
    }

    fn violated(&self) -> bool {
        !self.verifier.borrow().violations().is_empty()
    }
}

/// The events a scheduler may pick at a state: every packet that is the
/// oldest on its (non-relaxed) link, every packet on a relaxed link, plus
/// each node's earliest local event. `pending` is `(time, seq)`-sorted.
fn enabled_seqs(
    pending: &[PendingEvent<'_, Msg>],
    links: LinkMode,
    roots: &HashSet<NodeId>,
) -> Vec<u64> {
    let mut local_seen: HashSet<NodeId> = HashSet::new();
    let mut link_seen: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut out = Vec::new();
    for p in pending {
        let (node, ev) = p.msg;
        match ev {
            DsmEvent::Packet(pkt) => {
                let relaxed = match links {
                    LinkMode::Fifo => false,
                    LinkMode::RelaxFromRoots => roots.contains(&pkt.from),
                    LinkMode::Relax => true,
                };
                if relaxed || link_seen.insert((pkt.from, pkt.to)) {
                    out.push(p.seq);
                }
            }
            _ => {
                if local_seen.insert(*node) {
                    out.push(p.seq);
                }
            }
        }
    }
    out
}

/// Digest of a mid-exploration state: the machine digest plus the pending
/// events — per-node local queues in order, per-link packet queues in
/// order. Times are excluded: under the asynchronous-closure semantics
/// they never influence which transitions are possible, only trace
/// timestamps.
fn state_digest(sim: &Simulation<Machine<ModelInstance>>) -> Option<u64> {
    let machine_digest = sim.actors().next().expect("machine actor").state_digest()?;
    let mut locals: BTreeMap<NodeId, Vec<DsmEvent>> = BTreeMap::new();
    let mut links: BTreeMap<(NodeId, NodeId), Vec<Packet>> = BTreeMap::new();
    for p in sim.pending() {
        let (node, ev) = p.msg;
        match ev {
            DsmEvent::Packet(pkt) => links.entry((pkt.from, pkt.to)).or_default().push(*pkt),
            other => locals.entry(*node).or_default().push(other.clone()),
        }
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    machine_digest.hash(&mut h);
    for (node, evs) in &locals {
        node.hash(&mut h);
        evs.hash(&mut h);
    }
    for (link, pkts) in &links {
        link.hash(&mut h);
        pkts.hash(&mut h);
    }
    Some(h.finish())
}

struct Explorer {
    cfg: CanonicalConfig,
    opts: CheckOptions,
    groups: GroupTable,
    roots: HashSet<NodeId>,
    schedules: u64,
    truncated: u64,
    sleep_blocked: u64,
    pruned: u64,
    max_depth: usize,
    budget_hit: bool,
    visited: HashSet<u64>,
    visited_sleepy: HashSet<u64>,
    counterexample: Option<Counterexample>,
}

impl Explorer {
    /// Truncated executions count against the schedule budget too: a
    /// livelocking mutant would otherwise grind forever without ever
    /// *completing* a schedule. The work budget additionally charges for
    /// sleep-blocked and pruned leaves, bounding configurations whose
    /// trees are mostly abandoned branches.
    fn budget_exhausted(&self) -> bool {
        self.schedules + self.truncated >= self.opts.schedules_max
            || self.schedules + self.truncated + self.sleep_blocked + self.pruned
                >= self.opts.work_max
    }

    /// Replays `prefix` from the initial state. Every proper prefix was
    /// already checked violation-free, so only the final step can trip a
    /// checker.
    fn replay(&self, prefix: &[u64]) -> Exec {
        let mut exec = Exec::start(&self.cfg);
        for &seq in prefix {
            assert!(
                exec.sim.step_seq(seq),
                "replay diverged: seq {seq} is not pending"
            );
        }
        exec
    }

    fn record_counterexample(&mut self, exec: &Exec, choices: Vec<u64>) {
        self.counterexample = Some(Counterexample {
            config: self.cfg,
            choices,
            violations: exec.verifier.borrow().violations().to_vec(),
            trace: exec.sim.trace().entries().to_vec(),
        });
    }

    /// Final-state oracle for a drained execution: run the end-of-trace
    /// checks (rollback completeness, counter-value contiguity) and
    /// require every node's copy of the counter to equal the section
    /// count.
    fn finish_execution(&mut self, exec: Exec, prefix: &[u64]) -> ControlFlow<()> {
        exec.verifier.borrow_mut().finish();
        let Exec { sim, verifier } = exec;
        let trace: Vec<TraceEntry> = sim.trace().entries().to_vec();
        let machine = sim.into_actors().pop().expect("machine actor");
        let mut violations = verifier.borrow().violations().to_vec();
        let expected = self.cfg.expected_counter();
        let end = trace.last().map(|e| e.time).unwrap_or(SimTime::ZERO);
        for i in 0..machine.node_count() {
            let got = machine.mem(NodeId::new(i as u32)).read(COUNTER);
            if got != expected {
                violations.push(Violation {
                    time: end,
                    node: i,
                    check: CheckKind::Linearizability,
                    message: format!(
                        "final counter at node{i} is {got}, expected {expected}: \
                         increments were lost or duplicated"
                    ),
                });
            }
        }
        if violations.is_empty() {
            return ControlFlow::Continue(());
        }
        self.counterexample = Some(Counterexample {
            config: self.cfg,
            choices: prefix.to_vec(),
            violations,
            trace,
        });
        ControlFlow::Break(())
    }

    /// Whether the already-explored transition `z` commutes with the
    /// about-to-be-explored `e` (both identified by pending seq at the
    /// current state). Unknown seqs are conservatively dependent.
    fn indep(&self, snapshot: &[(u64, NodeId, DsmEvent)], z: u64, e: u64) -> bool {
        let find = |seq: u64| snapshot.iter().find(|(q, _, _)| *q == seq);
        match (find(z), find(e)) {
            (Some((_, zn, zev)), Some((_, en, eev))) => {
                independent(*zn, zev, *en, eev, &self.groups)
            }
            _ => false,
        }
    }

    /// Explores the state `exec` reached by `prefix`. The exec is
    /// consumed: it rolls down into the first child, so a linear run
    /// never replays; only sibling branches rebuild from the root.
    fn explore(&mut self, exec: Exec, prefix: &mut Vec<u64>, sleep: Vec<u64>) -> ControlFlow<()> {
        self.max_depth = self.max_depth.max(prefix.len());
        if exec.violated() {
            self.record_counterexample(&exec, prefix.clone());
            return ControlFlow::Break(());
        }
        if exec.sim.pending().is_empty() || exec.sim.stopped() {
            self.schedules += 1;
            return self.finish_execution(exec, prefix);
        }
        if prefix.len() >= self.opts.depth_max {
            self.truncated += 1;
            return ControlFlow::Continue(());
        }
        if self.budget_exhausted() {
            self.budget_hit = true;
            return ControlFlow::Break(());
        }
        let pending = exec.sim.pending();
        let snapshot: Vec<(u64, NodeId, DsmEvent)> = pending
            .iter()
            .map(|p| (p.seq, p.msg.0, p.msg.1.clone()))
            .collect();
        let enabled = enabled_seqs(&pending, self.opts.links, &self.roots);
        drop(pending);
        if self.opts.hash_states {
            if let Some(d) = state_digest(&exec.sim) {
                // A hit means a previous *empty-sleep* visit already
                // explored every behavior from this state; any current
                // sleep set only narrows that, so skipping is safe.
                if self.visited.contains(&d) {
                    self.pruned += 1;
                    return ControlFlow::Continue(());
                }
                if sleep.is_empty() {
                    self.visited.insert(d);
                } else {
                    // Exact (state, sleep-contents) revisit: an identical
                    // subtree was already explored — seqs differ across
                    // branches, so the sleep set is compared by the
                    // *events* it names, not their queue numbers.
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    d.hash(&mut h);
                    let mut members: Vec<u64> = sleep
                        .iter()
                        .filter_map(|&z| {
                            snapshot.iter().find(|(q, _, _)| *q == z).map(|(_, n, ev)| {
                                let mut mh = std::collections::hash_map::DefaultHasher::new();
                                (n, ev).hash(&mut mh);
                                mh.finish()
                            })
                        })
                        .collect();
                    members.sort_unstable();
                    members.hash(&mut h);
                    if !self.visited_sleepy.insert(h.finish()) {
                        self.pruned += 1;
                        return ControlFlow::Continue(());
                    }
                }
            }
        }

        let asleep: HashSet<u64> = sleep.iter().copied().collect();
        let explorable: Vec<u64> = enabled
            .iter()
            .copied()
            .filter(|s| !asleep.contains(s))
            .collect();
        if explorable.is_empty() {
            // Everything enabled here is covered by a sibling subtree.
            self.sleep_blocked += 1;
            return ControlFlow::Continue(());
        }
        let mut rolling = Some(exec);
        let mut done: Vec<u64> = Vec::new();
        for &e in &explorable {
            if self.budget_exhausted() {
                self.budget_hit = true;
                return ControlFlow::Break(());
            }
            let child_sleep: Vec<u64> = sleep
                .iter()
                .chain(done.iter())
                .copied()
                .filter(|&z| self.indep(&snapshot, z, e))
                .collect();
            prefix.push(e);
            let child = match rolling.take() {
                Some(mut ex) => {
                    assert!(ex.sim.step_seq(e), "enabled seq {e} must be pending");
                    ex
                }
                None => self.replay(prefix),
            };
            let r = self.explore(child, prefix, child_sleep);
            prefix.pop();
            r?;
            done.push(e);
        }
        ControlFlow::Continue(())
    }
}

/// Explores the schedule space of `cfg` under `opts`.
///
/// Returns a [`CheckReport`]; `report.complete` is true iff every
/// schedule (up to sleep-set equivalence, and state folding when enabled)
/// was executed without tripping a budget, and
/// `report.counterexample` carries the first violating schedule found.
///
/// # Panics
///
/// Panics if the workload's fabric is lossy or contended — the
/// independence relation used for reduction assumes message delivery is
/// reliable and links are independent.
pub fn check(cfg: CanonicalConfig, opts: CheckOptions) -> CheckReport {
    let probe = build_canonical(cfg);
    assert_eq!(
        probe.fabric().loss_probability(),
        0.0,
        "sesame-check requires a loss-free fabric"
    );
    assert_eq!(
        probe.fabric().contention(),
        ContentionModel::None,
        "sesame-check requires a contention-free fabric"
    );
    let groups = probe.groups().clone();
    drop(probe);
    let roots: HashSet<NodeId> = groups.iter().map(|g| g.root()).collect();

    let mut explorer = Explorer {
        cfg,
        opts,
        groups,
        roots,
        schedules: 0,
        truncated: 0,
        sleep_blocked: 0,
        pruned: 0,
        max_depth: 0,
        budget_hit: false,
        visited: HashSet::new(),
        visited_sleepy: HashSet::new(),
        counterexample: None,
    };
    let mut prefix = Vec::new();
    let root = Exec::start(&cfg);
    let _ = explorer.explore(root, &mut prefix, Vec::new());
    let complete =
        !explorer.budget_hit && explorer.truncated == 0 && explorer.counterexample.is_none();
    CheckReport {
        schedules: explorer.schedules,
        complete,
        truncated: explorer.truncated,
        sleep_blocked: explorer.sleep_blocked,
        pruned: explorer.pruned,
        max_depth: explorer.max_depth,
        counterexample: explorer.counterexample,
    }
}
