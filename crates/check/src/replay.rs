//! Counterexample serialization and deterministic replay.
//!
//! A counterexample file is a small line-oriented text format:
//!
//! ```text
//! sesame-check counterexample v1
//! contenders=2
//! rounds=1
//! alpha=0.05
//! threshold=0.3
//! optimistic=true
//! gwc_mutation=stale-grant-reuse
//! mutex_mutation=none
//! choices=3,1,7,12
//! ```
//!
//! [`replay`] rebuilds the exact workload, steps the recorded choices
//! through the simulator, and hands the resulting trace to the
//! `sesame-verify` offline checkers — the full checks when the schedule
//! runs to completion, the truncation-aware partial checks when it stops
//! mid-run (a counterexample cut at the first violation usually does).

use sesame_core::{MutexMutation, OptimisticConfig};
use sesame_dsm::{DsmEvent, GwcMutation};
use sesame_net::NodeId;
use sesame_sim::{ActorId, SimTime, Simulation, TraceEntry};
use sesame_verify::{check_trace, check_trace_partial, Violation};
use sesame_workloads::canonical::{build_canonical, CanonicalConfig};

use crate::explore::Counterexample;

const HEADER: &str = "sesame-check counterexample v1";

fn gwc_mutation_str(m: GwcMutation) -> &'static str {
    match m {
        GwcMutation::None => "none",
        GwcMutation::StaleGrantReuse => "stale-grant-reuse",
        GwcMutation::SeqGap => "seq-gap",
    }
}

fn parse_gwc_mutation(s: &str) -> Result<GwcMutation, String> {
    match s {
        "none" => Ok(GwcMutation::None),
        "stale-grant-reuse" => Ok(GwcMutation::StaleGrantReuse),
        "seq-gap" => Ok(GwcMutation::SeqGap),
        other => Err(format!("unknown gwc_mutation `{other}`")),
    }
}

fn mutex_mutation_str(m: MutexMutation) -> &'static str {
    match m {
        MutexMutation::None => "none",
        MutexMutation::DropRollback => "drop-rollback",
    }
}

fn parse_mutex_mutation(s: &str) -> Result<MutexMutation, String> {
    match s {
        "none" => Ok(MutexMutation::None),
        "drop-rollback" => Ok(MutexMutation::DropRollback),
        other => Err(format!("unknown mutex_mutation `{other}`")),
    }
}

/// Serializes a counterexample to the replay file format.
pub fn to_replay_string(cx: &Counterexample) -> String {
    let choices: Vec<String> = cx.choices.iter().map(|c| c.to_string()).collect();
    format!(
        "{HEADER}\ncontenders={}\nrounds={}\nalpha={}\nthreshold={}\noptimistic={}\n\
         gwc_mutation={}\nmutex_mutation={}\nchoices={}\n",
        cx.config.contenders,
        cx.config.rounds,
        cx.config.mutex.alpha,
        cx.config.mutex.threshold,
        cx.config.mutex.optimistic,
        gwc_mutation_str(cx.config.gwc_mutation),
        mutex_mutation_str(cx.config.mutex_mutation),
        choices.join(",")
    )
}

/// Parses a replay file into the workload it applies to and the recorded
/// schedule.
pub fn parse_replay(contents: &str) -> Result<(CanonicalConfig, Vec<u64>), String> {
    let mut lines = contents.lines();
    if lines.next().map(str::trim) != Some(HEADER) {
        return Err(format!("not a replay file: expected `{HEADER}` header"));
    }
    let mut cfg = CanonicalConfig::default();
    let mut mutex = OptimisticConfig::default();
    let mut choices: Option<Vec<u64>> = None;
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("malformed line `{line}`"))?;
        let bad = |what: &str| format!("invalid {what} `{value}`");
        match key {
            "contenders" => cfg.contenders = value.parse().map_err(|_| bad("contenders"))?,
            "rounds" => cfg.rounds = value.parse().map_err(|_| bad("rounds"))?,
            "alpha" => mutex.alpha = value.parse().map_err(|_| bad("alpha"))?,
            "threshold" => mutex.threshold = value.parse().map_err(|_| bad("threshold"))?,
            "optimistic" => mutex.optimistic = value.parse().map_err(|_| bad("optimistic"))?,
            "gwc_mutation" => cfg.gwc_mutation = parse_gwc_mutation(value)?,
            "mutex_mutation" => cfg.mutex_mutation = parse_mutex_mutation(value)?,
            "choices" => {
                let parsed: Result<Vec<u64>, _> = if value.is_empty() {
                    Ok(Vec::new())
                } else {
                    value.split(',').map(|c| c.trim().parse()).collect()
                };
                choices = Some(parsed.map_err(|_| bad("choices"))?);
            }
            other => return Err(format!("unknown key `{other}`")),
        }
    }
    cfg.mutex = mutex;
    let choices = choices.ok_or("missing `choices=` line")?;
    Ok((cfg, choices))
}

/// What a deterministic re-execution of a recorded schedule produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Violations from the `sesame-verify` offline checkers.
    pub violations: Vec<Violation>,
    /// Incomplete-trace notes (in-flight packets, open sections) when the
    /// schedule stops mid-run; empty for a drained execution.
    pub incomplete: Vec<String>,
    /// Whether the schedule ran the workload to completion.
    pub drained: bool,
    /// Trace records produced.
    pub trace_len: usize,
    /// The full recorded trace, for downstream annotation (e.g. the CLI's
    /// causal-chain rendering of a counterexample).
    pub trace: Vec<TraceEntry>,
}

/// Re-executes a recorded schedule and checks its trace offline.
pub fn replay(cfg: CanonicalConfig, choices: &[u64]) -> Result<ReplayOutcome, String> {
    let machine = build_canonical(cfg);
    let n = machine.node_count();
    let mut sim = Simulation::new(vec![machine], 1);
    sim.set_tracing(true);
    for i in 0..n {
        sim.schedule(
            SimTime::ZERO,
            ActorId::new(0),
            (NodeId::new(i as u32), DsmEvent::Start),
        );
    }
    for (step, &seq) in choices.iter().enumerate() {
        if !sim.step_seq(seq) {
            return Err(format!(
                "schedule does not apply: step {step} chose seq {seq}, which is not pending \
                 (wrong workload parameters?)"
            ));
        }
    }
    let drained = sim.pending().is_empty();
    let entries = sim.trace().entries();
    let (violations, incomplete) = if drained {
        (check_trace(entries), Vec::new())
    } else {
        let outcome = check_trace_partial(entries);
        (outcome.violations, outcome.incomplete)
    };
    Ok(ReplayOutcome {
        violations,
        incomplete,
        drained,
        trace_len: entries.len(),
        trace: entries.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesame_sim::TraceEntry;

    fn cx(config: CanonicalConfig, choices: Vec<u64>) -> Counterexample {
        Counterexample {
            config,
            choices,
            violations: Vec::new(),
            trace: Vec::<TraceEntry>::new(),
        }
    }

    #[test]
    fn replay_format_round_trips() {
        let config = CanonicalConfig {
            contenders: 3,
            rounds: 2,
            gwc_mutation: GwcMutation::SeqGap,
            mutex_mutation: MutexMutation::DropRollback,
            ..CanonicalConfig::default()
        };
        let s = to_replay_string(&cx(config, vec![3, 1, 7]));
        let (parsed, choices) = parse_replay(&s).expect("round trip");
        assert_eq!(parsed, config);
        assert_eq!(choices, vec![3, 1, 7]);
    }

    #[test]
    fn junk_is_rejected() {
        assert!(parse_replay("not a header\n").is_err());
        let s = format!("{HEADER}\nchoices=1,2\nbogus=3\n");
        assert!(parse_replay(&s).is_err());
        let s = format!("{HEADER}\ncontenders=2\n");
        assert!(parse_replay(&s).is_err(), "missing choices");
    }

    #[test]
    fn inapplicable_schedule_is_an_error_not_a_panic() {
        let cfg = CanonicalConfig::default();
        let err = replay(cfg, &[9999]).expect_err("seq 9999 is never pending");
        assert!(err.contains("not pending"), "got: {err}");
    }
}
