//! # sesame-check — exhaustive schedule-space model checking
//!
//! The simulator normally delivers events in one fixed `(time, seq)`
//! order, so a passing run certifies exactly one interleaving. This crate
//! replaces that fixed order with *controlled nondeterminism*: a DFS
//! driver re-executes a small deterministic workload (the
//! [`sesame_workloads::canonical`] configurations) under **every**
//! meaningfully different delivery schedule, running the `sesame-verify`
//! invariant checkers plus a linearizability oracle online in each one.
//!
//! ## Semantics of a schedule
//!
//! A schedule is the list of queue sequence numbers chosen at each step.
//! At every state the explorer may pick:
//!
//! * any pending **packet** that is the oldest on its `(from, to)` link —
//!   links stay FIFO (the fabric guarantees per-path ordering) but
//!   cross-link delays are arbitrary: this is the *asynchronous closure*
//!   of the timed model, covering every assignment of network latencies;
//! * the earliest pending **local** event (timer, compute completion) of
//!   each node — a node's own timeline is deterministic, only its
//!   interleaving with message arrivals varies.
//!
//! Delivering an event "late" clamps its delivery time to the current
//! clock, so the clock stays monotone and the trace the checkers see is a
//! real timed execution.
//!
//! ## Reduction
//!
//! Exploring all interleavings verbatim is factorial; the explorer prunes
//! with two classic techniques:
//!
//! * **sleep sets** (partial-order reduction): after fully exploring
//!   event `e` at a state, sibling subtrees inherit `e` in their sleep
//!   set and skip re-exploring it until a *dependent* event fires.
//!   Dependence is conservative footprint overlap
//!   ([`sesame_dsm::independent`]): events touching disjoint nodes and
//!   group roots commute, so only one of their two orders is explored.
//! * **state hashing** (on by default): states whose machine digest and
//!   pending event set were already fully explored (with an empty sleep
//!   set) are not revisited. The digest covers protocol state but not
//!   checker history, so hashing may fold prefixes that differ only in
//!   their real-time ordering history; switch it off when the
//!   linearizability oracle's real-time check must be exhaustive.
//!
//! Three budgets keep every run bounded: schedule depth, completed (or
//! depth-truncated) schedules, and total explored tree leaves of any
//! kind — the last one charges for sleep-blocked and pruned branches, so
//! even a configuration dominated by abandoned branches terminates.
//!
//! A violating schedule is reported as a replayable counterexample: the
//! chosen seq list plus the workload parameters serialize to a small text
//! file, and [`replay`] re-executes it deterministically, handing the full
//! trace to the `sesame-verify` offline checkers for diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
mod replay;

pub use explore::{check, CheckOptions, CheckReport, Counterexample, LinkMode};
pub use replay::{parse_replay, replay, to_replay_string, ReplayOutcome};

pub use sesame_core::MutexMutation;
pub use sesame_dsm::GwcMutation;
pub use sesame_workloads::canonical::{CanonicalConfig, COUNTER, LOCK};
