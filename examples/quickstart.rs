//! Quickstart: build a small Sesame system, take a lock optimistically,
//! and watch the communication delay disappear under the computation.
//!
//! Run with: `cargo run -p sesame-examples --bin quickstart`

use sesame_core::builder::{ModelChoice, SystemBuilder, TopologyChoice};
use sesame_core::{MutexSignal, OptimisticConfig, OptimisticMutex, Path};
use sesame_dsm::{run, AppEvent, NodeApi, Program, RunOptions, VarId};
use sesame_net::NodeId;
use sesame_sim::SimDur;

const LOCK: VarId = VarId::new(0);
const DATA: VarId = VarId::new(1);

/// A node that enters one optimistic critical section at start, increments
/// the shared datum, and reports what happened.
struct Quick {
    mutex: OptimisticMutex,
}

impl Program for Quick {
    fn on_event(&mut self, ev: AppEvent, api: &mut NodeApi<'_>) {
        if ev == AppEvent::Started {
            // A 2us section; the lock lives at a root two hops away, so the
            // request round trip is ~1.1us — fully hidden by the section.
            let path = self
                .mutex
                .enter(api, SimDur::from_us(2))
                .expect("first entry cannot nest");
            println!(
                "entered the critical section on the {path:?} path at {}",
                api.now()
            );
            return;
        }
        match self.mutex.on_event(&ev, api) {
            Some(MutexSignal::ExecuteBody) => {
                let v = api.read(DATA);
                api.write(DATA, v + 1);
                self.mutex.body_done(api);
            }
            Some(MutexSignal::Completed(c)) => {
                println!(
                    "section complete at {}: path {:?}, rollbacks {}, grant fully overlapped: {}",
                    api.now(),
                    c.path,
                    c.rollbacks,
                    c.fully_overlapped
                );
                assert_eq!(c.path, Path::Optimistic);
                // No stop(): let the run drain so the write finishes
                // propagating to every member before we inspect memories.
            }
            None => {}
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Nine CPUs on a 3x3 mesh torus with the paper's link timing; one
    // mutex group guarding DATA, rooted (lock-managed) at node 4.
    let machine = SystemBuilder::new(9)
        .topology(TopologyChoice::MeshTorus)
        .model(ModelChoice::Gwc)
        .mutex_group(NodeId::new(4), vec![DATA], LOCK)
        .program(
            NodeId::new(0),
            Box::new(Quick {
                mutex: OptimisticMutex::new(LOCK, vec![DATA], OptimisticConfig::default()),
            }),
        )
        .build()?;

    let result = run(machine, RunOptions::default());
    println!(
        "simulation ended at {} after {} events",
        result.end, result.events
    );
    for n in 0..9 {
        assert_eq!(result.machine.mem(NodeId::new(n)).read(DATA), 1);
    }
    println!("every node's eagerly shared copy of DATA is 1 — consistent.");
    Ok(())
}
