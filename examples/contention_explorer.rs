//! Explores the regime between Figure 8 (no contention, optimism always
//! pays) and heavy contention (the usage history pushes everyone onto the
//! regular path): sweeps the mean think time and reports path mix,
//! rollbacks, and mean section latency for optimistic vs regular locking.
//!
//! Run with: `cargo run --release -p sesame-examples --bin contention_explorer`

use sesame_core::OptimisticConfig;
use sesame_sim::SimDur;
use sesame_workloads::contention::{run_contention, ContentionConfig};

fn main() {
    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>8} {:>8} {:>12}",
        "think(us)", "opt latency", "reg latency", "opt%", "roll", "flick", "speed ratio"
    );
    for think_us in [500u64, 100, 50, 20, 10, 5, 2] {
        let base = ContentionConfig {
            contenders: 6,
            rounds: 50,
            mean_think: SimDur::from_us(think_us),
            ..ContentionConfig::default()
        };
        let opt = run_contention(base);
        let reg = run_contention(ContentionConfig {
            mutex: OptimisticConfig {
                optimistic: false,
                ..OptimisticConfig::default()
            },
            ..base
        });
        let s = opt.stats;
        let attempts = s.optimistic_attempts + s.regular_attempts;
        println!(
            "{:>10} {:>12} {:>12} {:>7.1}% {:>8} {:>8} {:>12.3}",
            think_us,
            opt.mean_section_latency.to_string(),
            reg.mean_section_latency.to_string(),
            100.0 * s.optimistic_attempts as f64 / attempts as f64,
            s.rollbacks,
            s.free_flickers,
            reg.mean_section_latency / opt.mean_section_latency,
        );
    }
    println!("\nat long think times the lock is usually free: the engine goes optimistic");
    println!("and hides the round trip. As contention rises the EWMA history crosses its");
    println!("threshold and the engine falls back to regular requests — adding no");
    println!("optimistic traffic exactly when the lock is busiest, as the paper claims.");
}
