//! The paper's Figure 8 scenario at example scale: a pipeline token
//! circulates; each visit takes one mutually exclusive section. Compares
//! how much of the lock round trip each mutual exclusion method hides.
//!
//! Run with: `cargo run --release -p sesame-examples --bin pipeline_speedup`

use sesame_workloads::pipeline::{run_pipeline, MutexMethod, PipelineConfig};

fn main() {
    let cfg = PipelineConfig {
        total_visits: 256,
        ..PipelineConfig::default()
    };
    println!(
        "pipeline: {} visits, local calc {}, mutex section {} (ratio 1/8)",
        cfg.total_visits,
        cfg.local_calc,
        cfg.section()
    );
    println!("zero-delay bound: {:.3}\n", cfg.ideal_power());
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "CPUs", "optimistic", "non-optimistic", "entry"
    );
    for nodes in [2usize, 4, 8, 16] {
        let opt = run_pipeline(nodes, MutexMethod::OptimisticGwc, cfg);
        let reg = run_pipeline(nodes, MutexMethod::RegularGwc, cfg);
        let ent = run_pipeline(nodes, MutexMethod::Entry, cfg);
        println!(
            "{:>6} {:>14.3} {:>14.3} {:>14.3}",
            nodes, opt.power, reg.power, ent.power
        );
        assert_eq!(opt.rollbacks, 0, "the pipeline is contention-free");
        assert!(opt.power > reg.power && reg.power > ent.power);
    }
    println!("\noptimistic execution overlaps the lock request with the section's");
    println!("computation; in small networks the grant arrives before the work ends.");
}
