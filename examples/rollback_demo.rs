//! The paper's Figure 7 interaction, narrated: a far-away optimistic
//! requester loses the race, rolls back, and re-executes — while the
//! Figure 6 hardware blocking drops the poisonous echo of its rolled-back
//! optimistic write. Runs twice, with and without hardware blocking, to
//! show the corruption the mechanism prevents.
//!
//! Run with: `cargo run -p sesame-examples --bin rollback_demo`

use sesame_core::builder::{ModelChoice, SystemBuilder, TopologyChoice};
use sesame_core::{MutexSignal, OptimisticConfig, OptimisticMutex};
use sesame_dsm::{
    lockval, run, AppEvent, MachineConfig, NodeApi, Program, RunOptions, VarId, Word,
};
use sesame_net::NodeId;
use sesame_sim::SimDur;

const LOCK: VarId = VarId::new(0);
const DATA: VarId = VarId::new(1);

struct Actor9 {
    mutex: Option<OptimisticMutex>, // None = plain acquire/release
    section: SimDur,
    contribution: Word,
}

impl Program for Actor9 {
    fn on_event(&mut self, ev: AppEvent, api: &mut NodeApi<'_>) {
        match &mut self.mutex {
            Some(m) => {
                if ev == AppEvent::Started {
                    m.enter(api, self.section).unwrap();
                    return;
                }
                match m.on_event(&ev, api) {
                    Some(MutexSignal::ExecuteBody) => {
                        let a = api.read(DATA);
                        api.write(DATA, a * 10 + self.contribution);
                        m.body_done(api);
                    }
                    Some(MutexSignal::Completed(c)) => {
                        println!(
                            "optimist finished at {}: {} rollback(s)",
                            api.now(),
                            c.rollbacks
                        );
                    }
                    None => {}
                }
            }
            None => match ev {
                AppEvent::Started => api.acquire(LOCK),
                AppEvent::Acquired { .. } => api.compute(self.section, 1),
                AppEvent::ComputeDone { .. } => {
                    let a = api.read(DATA);
                    api.write(DATA, a * 10 + self.contribution);
                    api.release(LOCK);
                }
                _ => {}
            },
        }
    }
}

fn scenario(hw_block: bool) -> Word {
    // Line of 7: the optimist at node 0 is 5 hops from the root at node 5;
    // the competitor at node 6 sits right next to it. The competitor's
    // whole lock session reaches the root before the optimist's request
    // does, so the optimist's in-flight update is *accepted* — and its
    // echo must be dropped at the source.
    let machine = SystemBuilder::new(7)
        .topology(TopologyChoice::Line)
        .machine_config(MachineConfig {
            hw_block,
            ..MachineConfig::default()
        })
        .model(ModelChoice::Gwc)
        .mutex_group(NodeId::new(5), vec![DATA], LOCK)
        .init_var(DATA, 1)
        .program(
            NodeId::new(0),
            Box::new(Actor9 {
                mutex: Some(OptimisticMutex::new(
                    LOCK,
                    vec![DATA],
                    OptimisticConfig::default(),
                )),
                section: SimDur::from_nanos(1100),
                contribution: 7,
            }),
        )
        .program(
            NodeId::new(6),
            Box::new(Actor9 {
                mutex: None,
                section: SimDur::from_nanos(100),
                contribution: 2,
            }),
        )
        .build()
        .expect("valid system");
    let result = run(
        machine,
        RunOptions {
            tracing: true,
            ..RunOptions::default()
        },
    );
    println!("--- protocol trace ---");
    for e in result.trace.entries() {
        if e.kind.starts_with("mutex") || e.kind.contains("drop") || e.kind.starts_with("lock") {
            println!("{e}");
        }
    }
    result.machine.mem(NodeId::new(0)).read(DATA)
}

fn main() {
    assert_eq!(lockval::FREE, -99_999_999, "the paper's free sentinel");
    println!("=== with hardware blocking (Figure 6) ===");
    let good = scenario(true);
    println!("final value everywhere: {good}  (competitor 1->12, optimist 12->127)\n");
    println!("=== without hardware blocking ===");
    let bad = scenario(false);
    println!("final value everywhere: {bad}  (the stale echo 17 corrupted the re-execution)");
    assert_eq!(good, 127);
    assert_eq!(bad, 177);
}
