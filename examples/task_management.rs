//! The paper's Figure 2 scenario at example scale: one producer feeding a
//! lock-protected shared task queue, consumers executing, compared across
//! GWC eagersharing and entry consistency.
//!
//! Run with: `cargo run --release -p sesame-examples --bin task_management`

use sesame_core::builder::ModelChoice;
use sesame_sim::SimDur;
use sesame_workloads::task_queue::{run_task_queue, TaskQueueConfig};

fn main() {
    let cfg = TaskQueueConfig {
        total_tasks: 256,
        exec_time: SimDur::from_ms(1),
        ..TaskQueueConfig::default()
    };
    println!(
        "task management: {} tasks, exec {}, 1 producer",
        cfg.total_tasks, cfg.exec_time
    );
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "CPUs", "GWC speedup", "entry", "ratio"
    );
    for nodes in [3usize, 5, 9, 17] {
        let gwc = run_task_queue(nodes, ModelChoice::Gwc, cfg);
        let entry = run_task_queue(nodes, ModelChoice::Entry, cfg);
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>8.2}",
            nodes,
            gwc.speedup,
            entry.speedup,
            gwc.speedup / entry.speedup
        );
        // Work is conserved under both models.
        assert_eq!(gwc.executed.iter().sum::<u32>(), cfg.total_tasks);
        assert_eq!(entry.executed.iter().sum::<u32>(), cfg.total_tasks);
    }
    println!("\neagersharing pushes the queue state to every node; entry consistency");
    println!("pays a token transfer with shipped data plus demand fetches per poll.");
}
