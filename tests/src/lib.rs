//! # sesame-tests — cross-crate integration and property tests
//!
//! This crate exists to host the workspace-level test suites in
//! `tests/tests/`: end-to-end scenarios spanning every crate, determinism
//! checks, and property-based tests of the core protocol invariants
//! (GWC total ordering, mutual exclusion safety under optimistic locking,
//! loss recovery). The library itself is intentionally empty.
