//! Determinism and non-interference tests for the telemetry layer.
//!
//! Two runs with the same seed must export byte-identical JSON snapshots,
//! CSV files, and Chrome traces; attaching the collector must not change
//! the simulation timeline.

use sesame_workloads::contention::{run_contention, ContentionConfig};
use sesame_workloads::telemetry::{run_with_telemetry, Scenario, ScenarioOptions};

fn opts(_scenario: Scenario) -> ScenarioOptions {
    ScenarioOptions {
        rounds: 15,
        tasks: 32,
        seed: 11,
        timeline: true,
        ..ScenarioOptions::default()
    }
}

#[test]
fn same_seed_exports_are_byte_identical() {
    for scenario in Scenario::ALL {
        let a = run_with_telemetry(scenario, &opts(scenario));
        let b = run_with_telemetry(scenario, &opts(scenario));
        assert_eq!(
            a.snapshot().to_json(),
            b.snapshot().to_json(),
            "snapshot JSON differs for {}",
            scenario.name()
        );
        assert_eq!(
            a.snapshot().to_csv(),
            b.snapshot().to_csv(),
            "snapshot CSV differs for {}",
            scenario.name()
        );
        assert_eq!(
            a.chrome_trace(),
            b.chrome_trace(),
            "Chrome trace differs for {}",
            scenario.name()
        );
        assert!(!a.timeline().is_empty(), "{} timeline", scenario.name());
    }
}

#[test]
fn snapshot_json_round_trips_exactly() {
    let t = run_with_telemetry(Scenario::Contention, &opts(Scenario::Contention));
    let json = t.snapshot().to_json();
    let parsed = sesame_telemetry::Snapshot::from_json(&json).expect("valid snapshot");
    assert_eq!(parsed.to_json(), json);
    assert_eq!(parsed.scenario, "contention");
    assert_eq!(parsed.seed, 11);
}

#[test]
fn telemetry_observer_does_not_perturb_the_simulation() {
    // The acceptance bar: disabling telemetry changes no simulation
    // timeline. Compare an observed run against a bare run of the same
    // configuration.
    let cfg = ContentionConfig {
        contenders: 4,
        rounds: 15,
        seed: 11,
        ..ContentionConfig::default()
    };
    let bare = run_contention(cfg);
    let observed = run_with_telemetry(Scenario::Contention, &opts(Scenario::Contention));
    assert_eq!(observed.end(), bare.result.end, "simulated end drifted");
    assert_eq!(
        observed.snapshot().counter("run/events"),
        bare.result.events,
        "event count drifted"
    );
    assert_eq!(
        observed.snapshot().counter("run/sections"),
        bare.sections,
        "section count drifted"
    );
}

#[test]
fn chrome_trace_contains_all_span_families() {
    let t = run_with_telemetry(Scenario::Contention, &opts(Scenario::Contention));
    let trace = t.chrome_trace();
    // Lock sections, optimistic sections, and network flights all appear.
    assert!(trace.contains("\"wait v0\""), "lock wait spans");
    assert!(trace.contains("\"hold v0\""), "lock hold spans");
    assert!(trace.contains("optimistic v0"), "optimistic sections");
    assert!(trace.contains("\"cat\":\"net\""), "message-in-flight spans");
    assert!(trace.contains("\"cat\":\"gwc\""), "root sequencing spans");
    // Valid JSON end to end.
    sesame_telemetry::json::parse(&trace).expect("trace parses");
}
