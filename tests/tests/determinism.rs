//! Determinism regression for the parallel sweep engine: the Figure 8
//! sweep run with `--jobs 1` and `--jobs 4` must produce identical series
//! — and the telemetry snapshot behind `--metrics-out` must serialize to
//! byte-identical JSON no matter how many copies run concurrently.
//!
//! This is the contract that makes `--jobs` safe to use everywhere: host
//! scheduling may reorder *completion*, never *results*.

use sesame_workloads::experiments::{figure8_jobs, figure8_optimism_jobs};
use sesame_workloads::pipeline::PipelineConfig;
use sesame_workloads::telemetry::{run_with_telemetry, Scenario, ScenarioOptions};

fn cfg() -> PipelineConfig {
    PipelineConfig {
        total_visits: 128,
        ..PipelineConfig::default()
    }
}

#[test]
fn figure8_sweep_is_identical_with_one_and_four_jobs() {
    let sizes = [2, 4, 8, 16];
    let serial = figure8_jobs(cfg(), &sizes, 1);
    let parallel = figure8_jobs(cfg(), &sizes, 4);
    assert_eq!(serial.ideal, parallel.ideal);
    assert_eq!(serial.optimistic, parallel.optimistic);
    assert_eq!(serial.regular, parallel.regular);
    assert_eq!(serial.entry, parallel.entry);
    assert_eq!(
        serial.headline_ratios(),
        parallel.headline_ratios(),
        "derived ratios must agree too"
    );
}

#[test]
fn figure8_optimism_telemetry_is_identical_with_one_and_four_jobs() {
    let sizes = [2, 4, 8];
    assert_eq!(
        figure8_optimism_jobs(cfg(), &sizes, 1),
        figure8_optimism_jobs(cfg(), &sizes, 4)
    );
}

#[test]
fn metrics_snapshot_json_is_byte_identical_across_concurrent_runs() {
    // The exact artifact `sesame run --metrics-out` writes, produced by
    // four concurrent copies of the same scenario plus one serial run:
    // all five JSON strings must be byte-for-byte equal.
    let opts = ScenarioOptions {
        contenders: 4,
        rounds: 15,
        ..ScenarioOptions::default()
    };
    let reference = run_with_telemetry(Scenario::Contention, &opts)
        .snapshot()
        .to_json();
    let copies = sesame_sweep::run_sweep(4, 4, |_| {
        run_with_telemetry(Scenario::Contention, &opts)
            .snapshot()
            .to_json()
    });
    for (i, copy) in copies.iter().enumerate() {
        assert_eq!(copy, &reference, "concurrent copy {i} diverged");
    }
}
