//! Golden-file regression for the export formats: the kernel rewrite
//! (calendar queue, slab state, lazy multicast routes) must leave every
//! published artifact byte-identical to the pre-change captures in
//! `tests/golden/`.
//!
//! The goldens were produced by the CLI from the commit before the
//! rewrite:
//!
//! ```text
//! sesame fig8 --sizes 2,4,8 --visits 128 --format csv > fig8_small.csv
//! sesame run --scenario contention --contenders 4 --rounds 15 \
//!     --metrics-out contention_metrics.json \
//!     --causes-out contention_causes.json \
//!     --series-out contention_series.json --window 100000
//! ```
//!
//! Each test below rebuilds the same artifact through the same library
//! calls the CLI makes and compares bytes. A diff here means the change
//! under review altered simulated behaviour (event order, timing, or
//! serialization) — not just performance — and must be treated as a
//! regression unless the goldens are deliberately regenerated with an
//! explanation.

use sesame_sim::SimDur;
use sesame_workloads::experiments::figure8_jobs;
use sesame_workloads::pipeline::PipelineConfig;
use sesame_workloads::telemetry::{run_with_telemetry, Scenario, ScenarioOptions};

/// Rebuilds the exact stdout of `sesame fig8 --sizes 2,4,8 --visits 128
/// --format csv`: the four CSV series joined as the CLI's `render` does,
/// plus the headline-ratios comment line.
fn fig8_csv() -> String {
    let cfg = PipelineConfig {
        total_visits: 128,
        ..PipelineConfig::default()
    };
    let data = figure8_jobs(cfg, &[2, 4, 8], 1);
    let csv = [&data.ideal, &data.optimistic, &data.regular, &data.entry]
        .iter()
        .map(|s| s.to_csv())
        .collect::<Vec<_>>()
        .join("\n");
    let r = data.headline_ratios();
    format!(
        "{}\n# at {} CPUs: opt/reg {:.2}, opt/entry {:.2}, reg/entry {:.2}\n",
        csv, r.nodes, r.optimistic_over_regular, r.optimistic_over_entry, r.regular_over_entry
    )
}

/// The contention run behind the three JSON goldens: `sesame run
/// --scenario contention --contenders 4 --rounds 15 --window 100000`.
fn contention_opts() -> ScenarioOptions {
    ScenarioOptions {
        contenders: 4,
        rounds: 15,
        window: Some(SimDur::from_nanos(100_000)),
        ..ScenarioOptions::default()
    }
}

#[test]
fn fig8_series_csv_matches_prechange_golden() {
    assert_eq!(
        fig8_csv(),
        include_str!("../golden/fig8_small.csv"),
        "fig8 CSV export diverged from the pre-rewrite golden"
    );
}

#[test]
fn contention_metrics_snapshot_matches_prechange_golden() {
    let t = run_with_telemetry(Scenario::Contention, &contention_opts());
    assert_eq!(
        t.snapshot().to_json(),
        include_str!("../golden/contention_metrics.json"),
        "metrics snapshot diverged from the pre-rewrite golden"
    );
}

#[test]
fn contention_causes_export_matches_prechange_golden() {
    let t = run_with_telemetry(Scenario::Contention, &contention_opts());
    assert_eq!(
        t.causes_json(),
        include_str!("../golden/contention_causes.json"),
        "causal DAG export diverged from the pre-rewrite golden"
    );
}

#[test]
fn contention_series_export_matches_prechange_golden() {
    let t = run_with_telemetry(Scenario::Contention, &contention_opts());
    assert_eq!(
        t.series_json().expect("window enables the series"),
        include_str!("../golden/contention_series.json"),
        "time-series export diverged from the pre-rewrite golden"
    );
}
