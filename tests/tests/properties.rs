//! Randomized tests of the core protocol invariants, over randomized
//! workloads, topologies, timings, and failure injection:
//!
//! * **GWC total ordering** — every group member observes the same
//!   sequence of applied writes, whatever the writers, timings, and
//!   (injected) packet loss;
//! * **mutual exclusion safety** — optimistic locking with arbitrary
//!   history parameters never lets critical sections overlap and never
//!   loses a counter increment;
//! * **pipeline liveness and mutex-method ordering** under random sizes
//!   and computation grain;
//! * **task conservation** in the bounded queue under random capacities
//!   and both memory models.
//!
//! Random cases are drawn from the kernel's own deterministic [`DetRng`]
//! so the suite needs no external property-testing crate and replays
//! identically on every run.

#![allow(clippy::type_complexity)]

use std::cell::RefCell;
use std::rc::Rc;

use sesame_core::builder::ModelChoice;
use sesame_core::OptimisticConfig;
use sesame_dsm::{
    run, AppEvent, GroupSpec, GroupTable, GwcModel, Machine, MachineConfig, NodeApi, Program,
    RunOptions, VarId, Word,
};
use sesame_net::{LinkTiming, MeshTorus2d, NodeId, Ring, Topology};
use sesame_sim::{DetRng, SimDur, SimTime};
use sesame_workloads::contention::{run_contention, ContentionConfig};
use sesame_workloads::pipeline::{run_pipeline, MutexMethod, PipelineConfig};
use sesame_workloads::task_queue::{run_task_queue, TaskQueueConfig};

fn n(id: u32) -> NodeId {
    NodeId::new(id)
}

/// One randomized write: (writer, delay ns, var, value).
#[derive(Debug, Clone)]
struct WritePlan {
    writer: u32,
    delay_ns: u64,
    var: u32,
    value: Word,
}

fn random_plan(rng: &mut DetRng, nodes: u32, vars: u32) -> Vec<WritePlan> {
    let count = rng.next_range(1, 24) as usize;
    (0..count)
        .map(|_| WritePlan {
            writer: rng.next_below(nodes as u64) as u32,
            delay_ns: rng.next_below(50_000),
            var: rng.next_below(vars as u64) as u32,
            value: rng.next_range(0, 2000) as Word - 1000,
        })
        .collect()
}

/// Runs a randomized eagersharing workload and returns each node's
/// observed (var, value) sequence plus final memories.
fn run_gwc_order_experiment(
    nodes: u32,
    vars: u32,
    plan: &[WritePlan],
    loss: f64,
    seed: u64,
) -> (Vec<Vec<(u32, Word)>>, Vec<Vec<Word>>) {
    let observed: Rc<RefCell<Vec<Vec<(u32, Word)>>>> =
        Rc::new(RefCell::new(vec![Vec::new(); nodes as usize]));
    let groups = GroupTable::new(vec![GroupSpec {
        root: n(0),
        members: (0..nodes).map(n).collect(),
        vars: (0..vars).map(VarId::new).collect(),
        mutex_lock: None,
    }])
    .unwrap();
    let mut programs: Vec<Box<dyn Program>> = Vec::new();
    for node in 0..nodes {
        let mut my_writes: Vec<(u64, u32, Word)> = plan
            .iter()
            .filter(|w| w.writer == node)
            .map(|w| (w.delay_ns, w.var, w.value))
            .collect();
        // Flush writes so loss recovery always has follow-up traffic; they
        // are value-tagged so the checker can ignore them.
        if node == 0 {
            for i in 0..12 {
                my_writes.push((60_000 + i * 3_000, 0, FLUSH_BASE + i as Word));
            }
        }
        let obs = observed.clone();
        programs.push(Box::new(
            move |ev: AppEvent, api: &mut NodeApi<'_>| match ev {
                AppEvent::Started => {
                    for (i, &(delay, _, _)) in my_writes.iter().enumerate() {
                        api.set_timer(SimDur::from_nanos(delay), i as u64);
                    }
                }
                AppEvent::TimerFired { tag } => {
                    let (_, var, value) = my_writes[tag as usize];
                    api.write(VarId::new(var), value);
                }
                AppEvent::Updated { var, value, .. } => {
                    obs.borrow_mut()[api.id().index()].push((var.get(), value));
                }
                _ => {}
            },
        ));
    }
    let model = GwcModel::new(&groups, nodes as usize);
    let mut machine = Machine::new(
        Box::new(MeshTorus2d::with_nodes(nodes as usize)),
        LinkTiming::paper_1994(),
        groups,
        programs,
        model,
        MachineConfig::default(),
    );
    if loss > 0.0 {
        machine.fabric_mut().set_loss(loss, seed);
    }
    let result = run(machine, RunOptions::default());
    let mems = (0..nodes)
        .map(|node| {
            (0..vars)
                .map(|v| result.machine.mem(n(node)).read(VarId::new(v)))
                .collect()
        })
        .collect();
    let observed = observed.borrow().clone();
    (observed, mems)
}

const FLUSH_BASE: Word = 1_000_000;

/// GWC total ordering: all members observe identical write sequences.
#[test]
fn gwc_total_order_holds() {
    let mut rng = DetRng::new(0x670C);
    for _ in 0..24 {
        let nodes = rng.next_range(2, 7) as u32;
        let vars = rng.next_range(1, 3) as u32;
        let plan = random_plan(&mut rng, nodes, vars);
        let (observed, mems) = run_gwc_order_experiment(nodes, vars, &plan, 0.0, 0);
        let reference = &observed[0];
        assert_eq!(reference.len(), plan.len() + 12, "all writes observed");
        for (node, seq) in observed.iter().enumerate().skip(1) {
            assert_eq!(seq, reference, "node {node} diverged");
        }
        for (node, mem) in mems.iter().enumerate().skip(1) {
            assert_eq!(mem, &mems[0], "memory {node} diverged");
        }
    }
}

/// The same invariant under packet loss: nack-based retransmission
/// restores total order for every write that precedes the flush tail.
#[test]
fn gwc_total_order_survives_loss() {
    let mut rng = DetRng::new(0x1055);
    for _ in 0..24 {
        let nodes = rng.next_range(2, 5) as u32;
        let vars = 2;
        let plan = random_plan(&mut rng, nodes, vars);
        let loss = 0.05 + rng.next_f64() * 0.25;
        let seed = rng.next_below(1000);
        let (observed, _) = run_gwc_order_experiment(nodes, vars, &plan, loss, seed);
        // Sequences agree on the common prefix, and every node saw at
        // least all non-flush writes.
        let min_len = observed.iter().map(Vec::len).min().unwrap();
        assert!(
            min_len >= plan.len(),
            "a node missed real writes: saw {min_len} of {}",
            plan.len()
        );
        for node in 1..nodes as usize {
            assert_eq!(
                &observed[node][..min_len],
                &observed[0][..min_len],
                "node {node} diverged under loss"
            );
        }
    }
}

/// Optimistic mutual exclusion is safe for arbitrary history
/// parameters, contention levels, and timing grain. The contention
/// driver asserts internally that every section completed and the
/// shared counter equals the section count.
#[test]
fn optimistic_mutex_is_always_safe() {
    let mut rng = DetRng::new(0x5AFE);
    for _ in 0..24 {
        let run = run_contention(ContentionConfig {
            contenders: rng.next_range(2, 6) as u32,
            rounds: rng.next_range(3, 14) as u32,
            section: SimDur::from_nanos(rng.next_range(500, 10_000)),
            mean_think: SimDur::from_us(rng.next_range(1, 99)),
            mutex: OptimisticConfig {
                alpha: 0.01 + rng.next_f64() * 0.89,
                threshold: 0.05 + rng.next_f64() * 0.90,
                optimistic: true,
            },
            timing: LinkTiming::paper_1994(),
            seed: rng.next_below(10_000),
            ..ContentionConfig::default()
        });
        assert_eq!(run.counter, run.sections as Word);
        assert_eq!(
            run.stats.completions,
            run.stats.optimistic_attempts + run.stats.regular_attempts
        );
    }
}

/// The pipeline completes under every mutex method at random scales,
/// never rolls back, and preserves the paper's method ordering.
#[test]
fn pipeline_liveness_and_ordering() {
    let mut rng = DetRng::new(0x9199);
    for _ in 0..8 {
        let nodes = rng.next_range(2, 9) as usize;
        let cfg = PipelineConfig {
            total_visits: rng.next_range(16, 79) as u32,
            local_calc: SimDur::from_us(rng.next_range(2, 19)),
            ..PipelineConfig::default()
        };
        let opt = run_pipeline(nodes, MutexMethod::OptimisticGwc, cfg);
        let reg = run_pipeline(nodes, MutexMethod::RegularGwc, cfg);
        let ent = run_pipeline(nodes, MutexMethod::Entry, cfg);
        assert_eq!(opt.rollbacks, 0);
        let bound = cfg.ideal_power();
        for (label, p) in [("opt", opt.power), ("reg", reg.power), ("ent", ent.power)] {
            assert!(
                p > 0.0 && p <= bound + 1e-9,
                "{label} power {p} out of range"
            );
        }
        assert!(
            opt.power + 1e-9 >= reg.power,
            "optimism must never lose: {} vs {}",
            opt.power,
            reg.power
        );
        assert!(
            reg.power > ent.power,
            "GWC must beat entry: {} vs {}",
            reg.power,
            ent.power
        );
    }
}

/// The bounded task queue conserves tasks for random capacities and
/// both memory models.
#[test]
fn task_queue_conserves_tasks() {
    let mut rng = DetRng::new(0x7A5C);
    for _ in 0..8 {
        let nodes = rng.next_range(2, 7) as usize;
        let cfg = TaskQueueConfig {
            total_tasks: rng.next_range(8, 59) as u32,
            capacity: rng.next_range(2, 31) as u32,
            exec_time: SimDur::from_us(rng.next_range(50, 399)),
            ..TaskQueueConfig::default()
        };
        // Conservation is asserted inside run_task_queue.
        let gwc = run_task_queue(nodes, ModelChoice::Gwc, cfg);
        assert!(gwc.speedup <= nodes as f64 + 1e-9);
        let entry = run_task_queue(nodes, ModelChoice::Entry, cfg);
        assert!(entry.speedup <= nodes as f64 + 1e-9);
    }
}

/// Torus routing invariants: path length equals hop count, hops are
/// symmetric, and the spanning tree reaches everything at shortest
/// depth from any root.
#[test]
fn torus_routing_invariants() {
    let mut rng = DetRng::new(0x7040);
    for _ in 0..32 {
        let nodes = rng.next_range(2, 39) as usize;
        let topo = MeshTorus2d::with_nodes(nodes);
        let a = n(rng.next_below(nodes as u64) as u32);
        let b = n(rng.next_below(nodes as u64) as u32);
        assert_eq!(topo.route(a, b).len() as u32, topo.hops(a, b));
        assert_eq!(topo.hops(a, b), topo.hops(b, a));
        let root = n(rng.next_below(nodes as u64) as u32);
        let tree = sesame_net::SpanningTree::build(&topo, root);
        for m in 0..nodes as u32 {
            assert_eq!(tree.depth(n(m)), topo.hops(root, n(m)));
        }
    }
}

/// Ring routes are valid end to end and never longer than half the ring.
#[test]
fn ring_routes_are_valid() {
    let mut rng = DetRng::new(0x0416);
    for _ in 0..32 {
        let nodes = rng.next_range(2, 29) as usize;
        let topo = Ring::new(nodes);
        let a = n(rng.next_below(nodes as u64) as u32);
        let b = n(rng.next_below(nodes as u64) as u32);
        let links = topo.route(a, b);
        let mut at = a;
        for l in &links {
            assert_eq!(l.from_node(), at);
            at = l.to_node();
        }
        assert_eq!(at, b);
        assert!(links.len() as u32 <= nodes as u32 / 2);
    }
}

/// Determinism meta-property: any fixed contention configuration produces
/// identical outcomes across repeated runs (one pair suffices per
/// configuration, exercised with three seeds).
#[test]
fn contention_runs_are_deterministic_across_seeds() {
    for seed in [1u64, 99, 12345] {
        let cfg = ContentionConfig {
            contenders: 5,
            rounds: 10,
            seed,
            ..ContentionConfig::default()
        };
        let a = run_contention(cfg);
        let b = run_contention(cfg);
        assert_eq!(a.result.end, b.result.end);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.mean_section_latency, b.mean_section_latency);
    }
}

/// The simulated end time never precedes the last observed event.
#[test]
fn makespan_is_monotone_in_workload_size() {
    let mut last = SimTime::ZERO;
    for rounds in [2u32, 6, 12] {
        let cfg = ContentionConfig {
            contenders: 3,
            rounds,
            ..ContentionConfig::default()
        };
        let r = run_contention(cfg);
        assert!(r.result.end > last, "more rounds must take longer");
        last = r.result.end;
    }
}
