//! Property-based tests of the core protocol invariants, over randomized
//! workloads, topologies, timings, and failure injection:
//!
//! * **GWC total ordering** — every group member observes the same
//!   sequence of applied writes, whatever the writers, timings, and
//!   (injected) packet loss;
//! * **mutual exclusion safety** — optimistic locking with arbitrary
//!   history parameters never lets critical sections overlap and never
//!   loses a counter increment;
//! * **pipeline liveness and mutex-method ordering** under random sizes
//!   and computation grain;
//! * **task conservation** in the bounded queue under random capacities
//!   and both memory models.

#![allow(clippy::type_complexity)]

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use sesame_core::builder::ModelChoice;
use sesame_core::OptimisticConfig;
use sesame_dsm::{
    run, AppEvent, GroupSpec, GroupTable, GwcModel, Machine, MachineConfig, NodeApi, Program,
    RunOptions, VarId, Word,
};
use sesame_net::{LinkTiming, MeshTorus2d, NodeId, Ring, Topology};
use sesame_sim::{SimDur, SimTime};
use sesame_workloads::contention::{run_contention, ContentionConfig};
use sesame_workloads::pipeline::{run_pipeline, MutexMethod, PipelineConfig};
use sesame_workloads::task_queue::{run_task_queue, TaskQueueConfig};

fn n(id: u32) -> NodeId {
    NodeId::new(id)
}

/// One randomized write: (writer, delay ns, var, value).
#[derive(Debug, Clone)]
struct WritePlan {
    writer: u32,
    delay_ns: u64,
    var: u32,
    value: Word,
}

fn write_plan(nodes: u32, vars: u32) -> impl Strategy<Value = WritePlan> {
    (0..nodes, 0u64..50_000, 0..vars, -1000i64..1000).prop_map(|(writer, delay_ns, var, value)| {
        WritePlan {
            writer,
            delay_ns,
            var,
            value,
        }
    })
}

/// Runs a randomized eagersharing workload and returns each node's
/// observed (var, value) sequence plus final memories.
fn run_gwc_order_experiment(
    nodes: u32,
    vars: u32,
    plan: &[WritePlan],
    loss: f64,
    seed: u64,
) -> (Vec<Vec<(u32, Word)>>, Vec<Vec<Word>>) {
    let observed: Rc<RefCell<Vec<Vec<(u32, Word)>>>> =
        Rc::new(RefCell::new(vec![Vec::new(); nodes as usize]));
    let groups = GroupTable::new(vec![GroupSpec {
        root: n(0),
        members: (0..nodes).map(n).collect(),
        vars: (0..vars).map(VarId::new).collect(),
        mutex_lock: None,
    }])
    .unwrap();
    let mut programs: Vec<Box<dyn Program>> = Vec::new();
    for node in 0..nodes {
        let mut my_writes: Vec<(u64, u32, Word)> = plan
            .iter()
            .filter(|w| w.writer == node)
            .map(|w| (w.delay_ns, w.var, w.value))
            .collect();
        // Flush writes so loss recovery always has follow-up traffic; they
        // are value-tagged so the checker can ignore them.
        if node == 0 {
            for i in 0..12 {
                my_writes.push((60_000 + i * 3_000, 0, FLUSH_BASE + i as Word));
            }
        }
        let obs = observed.clone();
        programs.push(Box::new(move |ev: AppEvent, api: &mut NodeApi<'_>| {
            match ev {
                AppEvent::Started => {
                    for (i, &(delay, _, _)) in my_writes.iter().enumerate() {
                        api.set_timer(SimDur::from_nanos(delay), i as u64);
                    }
                }
                AppEvent::TimerFired { tag } => {
                    let (_, var, value) = my_writes[tag as usize];
                    api.write(VarId::new(var), value);
                }
                AppEvent::Updated { var, value, .. } => {
                    obs.borrow_mut()[api.id().index()].push((var.get(), value));
                }
                _ => {}
            }
        }));
    }
    let model = GwcModel::new(&groups, nodes as usize);
    let mut machine = Machine::new(
        Box::new(MeshTorus2d::with_nodes(nodes as usize)),
        LinkTiming::paper_1994(),
        groups,
        programs,
        model,
        MachineConfig::default(),
    );
    if loss > 0.0 {
        machine.fabric_mut().set_loss(loss, seed);
    }
    let result = run(machine, RunOptions::default());
    let mems = (0..nodes)
        .map(|node| {
            (0..vars)
                .map(|v| result.machine.mem(n(node)).read(VarId::new(v)))
                .collect()
        })
        .collect();
    let observed = observed.borrow().clone();
    (observed, mems)
}

const FLUSH_BASE: Word = 1_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GWC total ordering: all members observe identical write sequences.
    #[test]
    fn gwc_total_order_holds(
        nodes in 2u32..8,
        vars in 1u32..4,
        plan in proptest::collection::vec(write_plan(8, 4), 1..25),
    ) {
        let plan: Vec<WritePlan> = plan
            .into_iter()
            .map(|mut w| { w.writer %= nodes; w.var %= vars; w })
            .collect();
        let (observed, mems) = run_gwc_order_experiment(nodes, vars, &plan, 0.0, 0);
        let reference = &observed[0];
        prop_assert_eq!(reference.len(), plan.len() + 12, "all writes observed");
        for (node, seq) in observed.iter().enumerate().skip(1) {
            prop_assert_eq!(seq, reference, "node {} diverged", node);
        }
        for (node, mem) in mems.iter().enumerate().skip(1) {
            prop_assert_eq!(mem, &mems[0], "memory {} diverged", node);
        }
    }

    /// The same invariant under packet loss: nack-based retransmission
    /// restores total order for every write that precedes the flush tail.
    #[test]
    fn gwc_total_order_survives_loss(
        nodes in 2u32..6,
        plan in proptest::collection::vec(write_plan(6, 2), 1..15),
        loss in 0.05f64..0.30,
        seed in 0u64..1000,
    ) {
        let vars = 2;
        let plan: Vec<WritePlan> = plan
            .into_iter()
            .map(|mut w| { w.writer %= nodes; w.var %= vars; w })
            .collect();
        let (observed, _) = run_gwc_order_experiment(nodes, vars, &plan, loss, seed);
        // Sequences agree on the common prefix, and every node saw at
        // least all non-flush writes.
        let min_len = observed.iter().map(Vec::len).min().unwrap();
        prop_assert!(min_len >= plan.len(),
            "a node missed real writes: saw {} of {}", min_len, plan.len());
        for node in 1..nodes as usize {
            prop_assert_eq!(
                &observed[node][..min_len],
                &observed[0][..min_len],
                "node {} diverged under loss", node
            );
        }
    }

    /// Optimistic mutual exclusion is safe for arbitrary history
    /// parameters, contention levels, and timing grain. The contention
    /// driver asserts internally that every section completed and the
    /// shared counter equals the section count.
    #[test]
    fn optimistic_mutex_is_always_safe(
        contenders in 2u32..7,
        rounds in 3u32..15,
        think_us in 1u64..100,
        section_ns in 500u64..10_000,
        alpha in 0.01f64..0.9,
        threshold in 0.05f64..0.95,
        seed in 0u64..10_000,
    ) {
        let run = run_contention(ContentionConfig {
            contenders,
            rounds,
            section: SimDur::from_nanos(section_ns),
            mean_think: SimDur::from_us(think_us),
            mutex: OptimisticConfig { alpha, threshold, optimistic: true },
            timing: LinkTiming::paper_1994(),
            seed,
            ..ContentionConfig::default()
        });
        prop_assert_eq!(run.counter, run.sections as Word);
        prop_assert_eq!(
            run.stats.completions,
            run.stats.optimistic_attempts + run.stats.regular_attempts
        );
    }

    /// The pipeline completes under every mutex method at random scales,
    /// never rolls back, and preserves the paper's method ordering.
    #[test]
    fn pipeline_liveness_and_ordering(
        nodes in 2usize..10,
        visits in 16u32..80,
        local_us in 2u64..20,
    ) {
        let cfg = PipelineConfig {
            total_visits: visits,
            local_calc: SimDur::from_us(local_us),
            ..PipelineConfig::default()
        };
        let opt = run_pipeline(nodes, MutexMethod::OptimisticGwc, cfg);
        let reg = run_pipeline(nodes, MutexMethod::RegularGwc, cfg);
        let ent = run_pipeline(nodes, MutexMethod::Entry, cfg);
        prop_assert_eq!(opt.rollbacks, 0);
        let bound = cfg.ideal_power();
        for (label, p) in [("opt", opt.power), ("reg", reg.power), ("ent", ent.power)] {
            prop_assert!(p > 0.0 && p <= bound + 1e-9, "{} power {} out of range", label, p);
        }
        prop_assert!(opt.power + 1e-9 >= reg.power,
            "optimism must never lose: {} vs {}", opt.power, reg.power);
        prop_assert!(reg.power > ent.power,
            "GWC must beat entry: {} vs {}", reg.power, ent.power);
    }

    /// The bounded task queue conserves tasks for random capacities and
    /// both memory models.
    #[test]
    fn task_queue_conserves_tasks(
        nodes in 2usize..8,
        tasks in 8u32..60,
        capacity in 2u32..32,
        exec_us in 50u64..400,
    ) {
        let cfg = TaskQueueConfig {
            total_tasks: tasks,
            capacity,
            exec_time: SimDur::from_us(exec_us),
            ..TaskQueueConfig::default()
        };
        // Conservation is asserted inside run_task_queue.
        let gwc = run_task_queue(nodes, ModelChoice::Gwc, cfg);
        prop_assert!(gwc.speedup <= nodes as f64 + 1e-9);
        let entry = run_task_queue(nodes, ModelChoice::Entry, cfg);
        prop_assert!(entry.speedup <= nodes as f64 + 1e-9);
    }

    /// Torus routing invariants: path length equals hop count, hops are
    /// symmetric, and the spanning tree reaches everything at shortest
    /// depth from any root.
    #[test]
    fn torus_routing_invariants(nodes in 2usize..40, a in 0u32..40, b in 0u32..40, r in 0u32..40) {
        let topo = MeshTorus2d::with_nodes(nodes);
        let a = n(a % nodes as u32);
        let b = n(b % nodes as u32);
        prop_assert_eq!(topo.route(a, b).len() as u32, topo.hops(a, b));
        prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
        let root = n(r % nodes as u32);
        let tree = sesame_net::SpanningTree::build(&topo, root);
        for m in 0..nodes as u32 {
            prop_assert_eq!(tree.depth(n(m)), topo.hops(root, n(m)));
        }
    }

    /// Ring and torus agree with each other's invariants on the shared
    /// Topology contract (route validity end to end).
    #[test]
    fn ring_routes_are_valid(nodes in 2usize..30, a in 0u32..30, b in 0u32..30) {
        let topo = Ring::new(nodes);
        let a = n(a % nodes as u32);
        let b = n(b % nodes as u32);
        let links = topo.route(a, b);
        let mut at = a;
        for l in &links {
            prop_assert_eq!(l.from_node(), at);
            at = l.to_node();
        }
        prop_assert_eq!(at, b);
        prop_assert!(links.len() as u32 <= nodes as u32 / 2);
    }
}

/// Determinism meta-property: any fixed contention configuration produces
/// identical outcomes across repeated runs (non-proptest because one pair
/// suffices per configuration, exercised with three seeds).
#[test]
fn contention_runs_are_deterministic_across_seeds() {
    for seed in [1u64, 99, 12345] {
        let cfg = ContentionConfig {
            contenders: 5,
            rounds: 10,
            seed,
            ..ContentionConfig::default()
        };
        let a = run_contention(cfg);
        let b = run_contention(cfg);
        assert_eq!(a.result.end, b.result.end);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.mean_section_latency, b.mean_section_latency);
    }
}

/// The simulated end time never precedes the last observed event.
#[test]
fn makespan_is_monotone_in_workload_size() {
    let mut last = SimTime::ZERO;
    for rounds in [2u32, 6, 12] {
        let cfg = ContentionConfig {
            contenders: 3,
            rounds,
            ..ContentionConfig::default()
        };
        let r = run_contention(cfg);
        assert!(r.result.end > last, "more rounds must take longer");
        last = r.result.end;
    }
}
