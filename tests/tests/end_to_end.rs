//! End-to-end scenarios spanning every crate: the figure reproductions at
//! reduced scale, with the paper's qualitative claims asserted.

use sesame_consistency::analysis::Figure1Params;
use sesame_core::builder::{ModelChoice, SystemBuilder, TopologyChoice};
use sesame_dsm::{run, AppEvent, NodeApi, Program, RunOptions, VarId};
use sesame_net::{LinkTiming, NodeId};
use sesame_sim::SimDur;
use sesame_workloads::experiments::{figure1, figure2, figure8};
use sesame_workloads::pipeline::PipelineConfig;
use sesame_workloads::task_queue::TaskQueueConfig;
use sesame_workloads::three_cpu::Figure1Config;

#[test]
fn figure1_reproduces_the_papers_ordering_and_closed_forms() {
    let cfg = Figure1Config::default();
    let (runs, table) = figure1(cfg);
    assert_eq!(runs.len(), 3);
    let gwc = &runs[0];
    let entry = &runs[1];
    let release = &runs[2];
    assert_eq!(gwc.model, "gwc");
    assert!(gwc.completion < entry.completion, "{table}");
    assert!(gwc.completion < release.completion, "{table}");
    // Simulation equals analysis exactly for all three models.
    let pred = Figure1Params {
        hops: 1,
        timing: cfg.timing,
        section: cfg.section,
        guarded_bytes: cfg.data_words * 16,
    }
    .predict();
    assert_eq!(gwc.completion, pred.gwc);
    assert_eq!(entry.completion, pred.entry);
    assert_eq!(release.completion, pred.release);
    assert!(table.contains("gwc"), "rendered table lists the models");
}

#[test]
fn figure2_mini_sweep_preserves_the_papers_shape() {
    let cfg = TaskQueueConfig {
        total_tasks: 96,
        exec_time: SimDur::from_us(400),
        ..TaskQueueConfig::default()
    };
    let data = figure2(cfg, &[3, 5, 9]);
    for (i, &n) in [3.0f64, 5.0, 9.0].iter().enumerate() {
        let ideal = data.ideal.points[i].y;
        let gwc = data.gwc.points[i].y;
        let entry = data.entry.points[i].y;
        assert!(
            ideal >= gwc && gwc > entry,
            "at {n} CPUs: ideal {ideal}, gwc {gwc}, entry {entry}"
        );
        // Speedup grows with network size in this range.
        assert!(gwc > n - 2.0, "gwc {gwc} too low at {n} CPUs");
    }
}

#[test]
fn figure8_mini_sweep_preserves_the_papers_shape() {
    let cfg = PipelineConfig {
        total_visits: 128,
        ..PipelineConfig::default()
    };
    let data = figure8(cfg, &[2, 8]);
    // The bound sits at 17/9 for every size.
    for p in &data.ideal.points {
        assert!((p.y - cfg.ideal_power()).abs() < 0.02, "bound {p:?}");
    }
    // Ordering: optimistic > regular > entry at both sizes; all below the
    // bound.
    for i in 0..2 {
        let (o, r, e) = (
            data.optimistic.points[i].y,
            data.regular.points[i].y,
            data.entry.points[i].y,
        );
        assert!(o > r && r > e, "ordering broke: {o} {r} {e}");
        assert!(o <= cfg.ideal_power());
    }
    // Decline with network size for the GWC methods.
    assert!(data.optimistic.points[0].y > data.optimistic.points[1].y);
    assert!(data.regular.points[0].y > data.regular.points[1].y);
    // Headline ratios in the paper's ballpark at 2 CPUs.
    let ratios = data.headline_ratios();
    assert!(
        (1.0..=1.3).contains(&ratios.optimistic_over_regular),
        "opt/reg {ratios:?}"
    );
    assert!(
        (1.6..=2.6).contains(&ratios.optimistic_over_entry),
        "opt/entry {ratios:?}"
    );
}

/// The same counter-increment program runs under every memory model and
/// produces the same final value — the machine's model seam works.
#[test]
fn one_program_runs_under_every_model() {
    const LOCK: VarId = VarId::new(0);
    const COUNTER: VarId = VarId::new(1);

    struct Incr {
        rounds: u32,
    }
    impl Program for Incr {
        fn on_event(&mut self, ev: AppEvent, api: &mut NodeApi<'_>) {
            match ev {
                AppEvent::Started => api.acquire(LOCK),
                AppEvent::Acquired { .. } => api.fetch(COUNTER),
                AppEvent::ValueReady { value, .. } => {
                    api.write(COUNTER, value + 1);
                    api.release(LOCK);
                }
                AppEvent::Released { .. } => {
                    self.rounds -= 1;
                    if self.rounds > 0 {
                        api.acquire(LOCK);
                    }
                }
                _ => {}
            }
        }
    }

    for model in [
        ModelChoice::Gwc,
        ModelChoice::Entry,
        ModelChoice::Release,
        ModelChoice::Weak,
    ] {
        let mut builder = SystemBuilder::new(4)
            .topology(TopologyChoice::MeshTorus)
            .timing(LinkTiming::paper_1994())
            .model(model)
            .mutex_group(NodeId::new(0), vec![COUNTER], LOCK);
        for i in 0..4 {
            builder = builder.program(NodeId::new(i), Box::new(Incr { rounds: 5 }));
        }
        let machine = builder.build().unwrap();
        let result = run(machine, RunOptions::default());
        // The authoritative copy shows all 20 increments. Under entry
        // consistency only the final token owner is guaranteed current, so
        // check the maximum across nodes.
        let max = (0..4)
            .map(|i| result.machine.mem(NodeId::new(i)).read(COUNTER))
            .max()
            .unwrap();
        assert_eq!(max, 20, "under {model:?}");
    }
}

/// Workspace-wide determinism: every figure driver produces bit-identical
/// results across runs.
#[test]
fn figure_drivers_are_deterministic() {
    let f1 = || {
        let (runs, _) = figure1(Figure1Config::default());
        runs.iter().map(|r| r.completion).collect::<Vec<_>>()
    };
    assert_eq!(f1(), f1());

    let cfg2 = TaskQueueConfig {
        total_tasks: 48,
        ..TaskQueueConfig::default()
    };
    let f2 = || {
        let d = figure2(cfg2, &[5]);
        (d.ideal.points[0].y, d.gwc.points[0].y, d.entry.points[0].y)
    };
    assert_eq!(f2(), f2());

    let cfg8 = PipelineConfig {
        total_visits: 32,
        ..PipelineConfig::default()
    };
    let f8 = || {
        let d = figure8(cfg8, &[4]);
        (
            d.ideal.points[0].y,
            d.optimistic.points[0].y,
            d.regular.points[0].y,
            d.entry.points[0].y,
        )
    };
    assert_eq!(f8(), f8());
}

/// Full-scale Figure 2 sanity at 129 nodes — slow in debug builds, so it
/// only runs when asked for explicitly (`cargo test -- --ignored`).
#[test]
#[ignore = "full 129-node sweep; run with --ignored (or see repro-fig2)"]
fn full_scale_task_management_conserves_tasks() {
    use sesame_workloads::task_queue::run_task_queue;
    let cfg = TaskQueueConfig::default();
    let r = run_task_queue(129, ModelChoice::Gwc, cfg);
    assert_eq!(r.executed.iter().sum::<u32>(), cfg.total_tasks);
    assert!(r.speedup > 60.0, "speedup {}", r.speedup);
}
